#include "src/workload/user_model.h"

#include <algorithm>

#include "src/core/investigator.h"
#include "src/util/path.h"

namespace seer {

UserModel::UserModel(SyscallTracer* tracer, const UserEnvironment* env, UserModelConfig config,
                     uint64_t seed)
    : tracer_(tracer), env_(env), config_(std::move(config)), rng_(seed) {
  project_built_.assign(env_->projects.size(), false);
  // The login session: one long-lived shell owns everything the user does.
  login_shell_ = tracer_->processes()->SpawnInit(1000, env_->home);
  tracer_->Exec(login_shell_, env_->sh);
  OpenSharedLibs(login_shell_);
  // Shells read the user's startup files.
  for (const auto& dot : env_->dot_files) {
    const auto r = tracer_->Open(login_shell_, dot, false);
    if (r.ok()) {
      tracer_->Close(login_shell_, r.fd);
    }
  }
}

bool UserModel::Available(const std::string& path) const {
  return !availability_ || availability_(path);
}

bool UserModel::ProjectAvailable(int index) const {
  if (!availability_) {
    return true;
  }
  // The user judges a project by its primary files.
  const ProjectInfo& proj = env_->projects[index];
  if (!proj.sources.empty() && !Available(proj.sources[0])) {
    return false;
  }
  return proj.makefile.empty() || Available(proj.makefile);
}

void UserModel::Think(double mean_seconds) {
  tracer_->clock()->AdvanceSeconds(rng_.NextExponential(mean_seconds));
}

Pid UserModel::ForkExec(Pid shell, const std::string& program) {
  const auto fork_result = tracer_->Fork(shell);
  if (!fork_result.ok()) {
    return -1;
  }
  const Pid child = fork_result.pid;
  tracer_->Exec(child, program);
  OpenSharedLibs(child);
  return child;
}

void UserModel::OpenSharedLibs(Pid pid) {
  // The dynamic loader maps the shared libraries on every exec — the
  // universal-link noise of Section 4.2.
  for (const auto& lib : env_->shared_libs) {
    const auto r = tracer_->Open(pid, lib, false);
    if (r.ok()) {
      tracer_->Close(pid, r.fd);
    }
  }
}

Fd UserModel::OpenOrMiss(Pid pid, const std::string& path, bool write, MissSeverity severity,
                         bool report_manual) {
  const auto r = tracer_->Open(pid, path, write);
  if (r.ok()) {
    return r.fd;
  }
  if (r.status == OpStatus::kNotLocal && report_manual && miss_log_ != nullptr) {
    // The user runs the miss-recording program, which both logs the miss
    // (with a severity code) and schedules the file for hoarding
    // (Section 4.4).
    miss_log_->RecordManual(path, tracer_->clock()->now(), severity);
  }
  return -1;
}

MissSeverity UserModel::DrawWorkMissSeverity() {
  const double roll = rng_.NextDouble();
  if (roll < 0.05) {
    return MissSeverity::kTaskChange;
  }
  if (roll < 0.33) {
    return MissSeverity::kActivityChange;
  }
  return MissSeverity::kMinor;
}

void UserModel::GetcwdWalk(Pid pid, const std::string& dir) {
  // The getcwd library routine climbs the tree, opening and reading each
  // ancestor directory (Section 4.1).
  std::string current = dir;
  for (int depth = 0; depth < 16; ++depth) {
    const auto r = tracer_->OpenDir(pid, current);
    if (r.ok()) {
      tracer_->ReadDir(pid, r.fd);
      tracer_->CloseDir(pid, r.fd);
    }
    if (current == "/") {
      break;
    }
    current = Dirname(current);
  }
}

void UserModel::MaybeProbeMisc(Pid pid) {
  if (env_->misc_files.empty() || !rng_.NextBool(config_.misc_probe_prob)) {
    return;
  }
  // An application spawns a helper that checks an optional data file; the
  // user never notices when this fails, but the automatic detector does
  // (Section 4.4). Helpers favour the same few optional files (Zipf), as
  // real ones do. The probe runs in its own process, so its references form
  // an independent stream (Section 4.7) instead of contaminating the
  // spawning application's stream.
  const auto& path = env_->misc_files[rng_.NextZipf(env_->misc_files.size(), 2.0)];
  const Pid helper = ForkExec(pid, env_->pager);
  if (helper < 0) {
    return;
  }
  tracer_->Stat(helper, path);
  const Fd fd = OpenOrMiss(helper, path, false, MissSeverity::kMinor, /*report_manual=*/false);
  if (fd >= 0) {
    Think(config_.mean_action_seconds);
    tracer_->Close(helper, fd);
  }
  tracer_->Exit(helper);
}

void UserModel::EditFile(Pid editor, const std::string& path) {
  // stat-then-open: the editor checks writability first (Section 4.8).
  tracer_->Stat(editor, path);
  const Fd fd = OpenOrMiss(editor, path, false, DrawWorkMissSeverity(),
                           /*report_manual=*/true);
  if (fd < 0) {
    return;
  }
  Think(60.0);  // the user actually edits for a while
  tracer_->Close(editor, fd);

  // Save through a temporary in the same directory, then rename over the
  // original — the classic editor save dance (exercises rename handling,
  // Section 4.8). Content is preserved so #include structure survives.
  const std::string tmp = path + "#tmp#";
  const auto content = tracer_->fs()->ReadContent(path);
  const auto info = tracer_->fs()->Stat(path);
  const auto create = tracer_->Create(editor, tmp, info.has_value() ? info->size : 1024);
  if (create.ok() || create.fd >= 0) {
    if (content.has_value()) {
      tracer_->fs()->WriteContent(tmp, *content, tracer_->clock()->now());
    }
    tracer_->Close(editor, create.fd);
    tracer_->Rename(editor, tmp, path);
  }
}

void UserModel::CompileOne(Pid shell, const ProjectInfo& proj, size_t source_index) {
  const Pid cc = ForkExec(shell, env_->compiler);
  if (cc < 0) {
    return;
  }
  const std::string& source = proj.sources[source_index];
  // The compiler holds the source open for the whole compilation while the
  // headers are opened and closed in sequence — the example that motivates
  // lifetime semantic distance (Section 3.1.1).
  const Fd src_fd = OpenOrMiss(cc, source, false, DrawWorkMissSeverity(),
                               /*report_manual=*/true);
  if (src_fd >= 0) {
    const auto content = tracer_->fs()->ReadContent(source);
    if (content.has_value()) {
      for (const auto& inc : IncludeScanner::ParseIncludes(*content)) {
        const std::string header = AbsolutePath(Dirname(source), inc);
        const Fd h = OpenOrMiss(cc, header, false, MissSeverity::kActivityChange,
                                /*report_manual=*/true);
        if (h >= 0) {
          tracer_->Close(cc, h);
        }
      }
    }
    // The source's own system headers (a compile opens the same fixed set
    // every time).
    if (content.has_value()) {
      for (const auto& sys : IncludeScanner::ParseSystemIncludes(*content)) {
        const auto r = tracer_->Open(cc, "/usr/include/" + sys, false);
        if (r.ok()) {
          tracer_->Close(cc, r.fd);
        }
      }
    }
    // Emit the object file.
    const std::string& object = proj.objects[source_index];
    const auto obj = tracer_->Create(cc, object,
                                     2 * (tracer_->fs()->Stat(source)->size / 3) + 1'000);
    if (obj.fd >= 0) {
      tracer_->Close(cc, obj.fd);
    }
    tracer_->Close(cc, src_fd);
  }
  tracer_->clock()->AdvanceSeconds(2.0 + rng_.NextDouble() * 6.0);  // compile time
  tracer_->Exit(cc);
}

void UserModel::BuildProject(Pid shell, const ProjectInfo& proj, bool multitask) {
  const Pid make = ForkExec(shell, env_->make);
  if (make < 0) {
    return;
  }
  const Fd mk = OpenOrMiss(make, proj.makefile, false, DrawWorkMissSeverity(),
                           /*report_manual=*/true);
  if (mk < 0) {
    tracer_->Exit(make);
    return;
  }

  // make stats everything to decide what is stale (attribute examination,
  // Section 4.8).
  for (const auto& s : proj.sources) {
    tracer_->Stat(make, s);
  }
  for (const auto& o : proj.objects) {
    tracer_->Stat(make, o);
  }

  const bool first_build = !project_built_[static_cast<size_t>(current_project_)];
  const size_t count = proj.sources.size();
  for (size_t i = 0; i < count; ++i) {
    // Incremental builds recompile a subset.
    if (!first_build && !rng_.NextBool(0.4)) {
      continue;
    }
    CompileOne(make, proj, i);
    // Multitasking: halfway through a long build, the user reads mail in
    // another window, interleaving an independent reference stream
    // (Section 4.7).
    if (multitask && i == count / 2) {
      MailSession(login_shell_);
    }
  }

  // Link step.
  const Pid ld = ForkExec(make, env_->linker);
  if (ld >= 0) {
    uint64_t total = 0;
    for (const auto& object : proj.objects) {
      const auto r = tracer_->Open(ld, object, false);
      if (r.ok()) {
        const auto info = tracer_->fs()->Stat(object);
        total += info.has_value() ? info->size : 0;
        tracer_->Close(ld, r.fd);
      }
    }
    const auto bin = tracer_->Create(ld, proj.binary, total + 20'000);
    if (bin.fd >= 0) {
      tracer_->Close(ld, bin.fd);
    }
    tracer_->Exit(ld);
  }

  tracer_->Close(make, mk);
  tracer_->Exit(make);
  project_built_[static_cast<size_t>(current_project_)] = true;
}

void UserModel::DevSession(Pid shell) {
  const ProjectInfo& proj = env_->projects[static_cast<size_t>(current_project_)];

  const Pid editor = ForkExec(shell, env_->editor);
  if (editor < 0) {
    return;
  }
  tracer_->Chdir(editor, proj.dir);
  if (rng_.NextBool(config_.getcwd_prob)) {
    GetcwdWalk(editor, proj.dir);
  }
  // Editors read directories for filename completion — meaningful programs
  // that read directories must not be flagged meaningless (Section 4.1).
  const auto dir = tracer_->OpenDir(editor, proj.dir);
  if (dir.ok()) {
    tracer_->ReadDir(editor, dir.fd);
    tracer_->CloseDir(editor, dir.fd);
  }

  // Edit a few related files.
  const size_t edits = 1 + rng_.NextBounded(3);
  for (size_t e = 0; e < edits && !proj.sources.empty(); ++e) {
    EditFile(editor, proj.sources[rng_.NextBounded(proj.sources.size())]);
    if (!proj.headers.empty() && rng_.NextBool(0.5)) {
      EditFile(editor, proj.headers[rng_.NextBounded(proj.headers.size())]);
    }
  }
  // Scratch file in /tmp (Section 4.5).
  const auto tmp = tracer_->Create(editor, "/tmp/ed" + std::to_string(editor), 4'096);
  if (tmp.fd >= 0) {
    tracer_->Close(editor, tmp.fd);
    tracer_->Unlink(editor, "/tmp/ed" + std::to_string(editor));
  }
  // Consult the notes sometimes.
  if (!proj.notes.empty() && rng_.NextBool(0.3)) {
    const Fd fd = OpenOrMiss(editor, proj.notes[rng_.NextBounded(proj.notes.size())], false,
                             MissSeverity::kMinor, /*report_manual=*/true);
    if (fd >= 0) {
      Think(30.0);
      tracer_->Close(editor, fd);
    }
  }
  MaybeProbeMisc(editor);
  tracer_->Exit(editor);

  // Build after editing.
  BuildProject(shell, proj, rng_.NextBool(config_.multitask_prob));

  // Run the result.
  if (tracer_->fs()->Exists(proj.binary)) {
    const Pid prog = ForkExec(shell, proj.binary);
    if (prog >= 0) {
      Think(10.0);
      tracer_->Exit(prog);
    }
  }
}

void UserModel::DocSession(Pid shell) {
  if (env_->documents.empty()) {
    return;
  }
  const DocumentInfo& doc = env_->documents[static_cast<size_t>(current_document_)];
  const Pid editor = ForkExec(shell, env_->editor);
  if (editor < 0) {
    return;
  }
  tracer_->Chdir(editor, Dirname(doc.path));
  EditFile(editor, doc.path);
  for (const auto& support : doc.support) {
    const Fd fd = OpenOrMiss(editor, support, false, MissSeverity::kMinor,
                             /*report_manual=*/true);
    if (fd >= 0) {
      Think(config_.mean_action_seconds);
      tracer_->Close(editor, fd);
    }
  }
  tracer_->Exit(editor);

  // Format the document: troff reads everything and writes a temp output.
  const Pid fmt = ForkExec(shell, env_->formatter);
  if (fmt >= 0) {
    const Fd d = OpenOrMiss(fmt, doc.path, false, DrawWorkMissSeverity(),
                            /*report_manual=*/true);
    if (d >= 0) {
      for (const auto& support : doc.support) {
        const auto r = tracer_->Open(fmt, support, false);
        if (r.ok()) {
          tracer_->Close(fmt, r.fd);
        }
      }
      const auto out = tracer_->Create(fmt, "/tmp/fmt" + std::to_string(fmt), 50'000);
      if (out.fd >= 0) {
        tracer_->Close(fmt, out.fd);
      }
      tracer_->Close(fmt, d);
    }
    tracer_->Exit(fmt);
  }
}

void UserModel::MailSession(Pid shell) {
  const Pid mail = ForkExec(shell, env_->mailer);
  if (mail < 0) {
    return;
  }
  const Fd inbox = OpenOrMiss(mail, env_->mailbox, true, MissSeverity::kActivityChange,
                              /*report_manual=*/true);
  if (inbox >= 0) {
    Think(30.0);
    // File a message into a folder.
    if (!env_->mail_folders.empty() && rng_.NextBool(0.5)) {
      const auto& folder = env_->mail_folders[rng_.NextBounded(env_->mail_folders.size())];
      const Fd f = OpenOrMiss(mail, folder, true, MissSeverity::kMinor, /*report_manual=*/true);
      if (f >= 0) {
        tracer_->Close(mail, f);
      }
    }
    // Compose through a temp file.
    const std::string tmp = "/tmp/mail" + std::to_string(mail);
    const auto t = tracer_->Create(mail, tmp, 2'000);
    if (t.fd >= 0) {
      tracer_->Close(mail, t.fd);
      tracer_->Unlink(mail, tmp);
    }
    tracer_->Close(mail, inbox);
  }
  MaybeProbeMisc(mail);
  tracer_->Exit(mail);
}

void UserModel::FindScan(Pid shell) {
  const Pid find = ForkExec(shell, env_->find);
  if (find < 0) {
    return;
  }
  // Depth-first walk over a subtree ("find ~/projN -name ..."), opening
  // every directory and stat-ing every file — exactly the
  // semantic-information-free access pattern of Section 4.1. It also
  // destroys the LRU history of everything it touches.
  std::vector<std::string> roots;
  roots.push_back(env_->home + "/old");
  roots.push_back(env_->home + "/doc");
  for (const auto& proj : env_->projects) {
    roots.push_back(proj.dir);
  }
  std::vector<std::string> stack = {roots[rng_.NextBounded(roots.size())]};
  int visited = 0;
  while (!stack.empty() && visited < 2'000) {
    const std::string dir = stack.back();
    stack.pop_back();
    const auto d = tracer_->OpenDir(find, dir);
    if (!d.ok()) {
      continue;
    }
    tracer_->ReadDir(find, d.fd);
    // find reads the whole directory, closes it, and only then visits the
    // entries — the behaviour that defeated the paper's approach #3
    // (meaningless-while-directory-open), Section 4.1.
    tracer_->CloseDir(find, d.fd);
    for (const auto& name : tracer_->fs()->ListDir(dir)) {
      const std::string path = dir + "/" + name;
      const auto info = tracer_->fs()->Stat(path);
      ++visited;
      if (info.has_value() && info->kind == NodeKind::kDirectory) {
        stack.push_back(path);
      } else {
        tracer_->Stat(find, path);
      }
    }
  }
  tracer_->Exit(find);
}

void UserModel::LsSession(Pid shell) {
  const Pid ls = ForkExec(shell, env_->ls);
  if (ls < 0) {
    return;
  }
  const ProjectInfo& proj = env_->projects.empty()
                                ? ProjectInfo{}
                                : env_->projects[static_cast<size_t>(current_project_)];
  if (!proj.dir.empty()) {
    const auto d = tracer_->OpenDir(ls, proj.dir);
    if (d.ok()) {
      tracer_->ReadDir(ls, d.fd);
      tracer_->CloseDir(ls, d.fd);
    }
    // Implied miss (Section 4.4): the listing is short of a file the user
    // expected; no open is ever attempted, but the user records the miss so
    // it will be hoarded next time.
    if (availability_ && miss_log_ != nullptr) {
      for (const auto& note : proj.notes) {
        if (!Available(note)) {
          miss_log_->RecordManual(note, tracer_->clock()->now(), MissSeverity::kPreload);
          break;
        }
      }
    }
  }
  tracer_->Exit(ls);
}

void UserModel::PickNextProject() {
  if (!rng_.NextBool(config_.attention_shift_prob) || env_->projects.empty()) {
    return;
  }
  // Attention shift. While disconnected the user plans ahead, devoting
  // themselves to hoarded projects — but occasionally forgets
  // (Section 5.2.2).
  const bool try_anything = !availability_ || rng_.NextBool(config_.unavailable_attempt_prob);
  for (int attempt = 0; attempt < 8; ++attempt) {
    const int candidate = static_cast<int>(rng_.NextBounded(env_->projects.size()));
    if (candidate == current_project_) {
      continue;
    }
    if (try_anything || ProjectAvailable(candidate)) {
      current_project_ = candidate;
      break;
    }
  }
  current_document_ = static_cast<int>(rng_.NextBounded(
      std::max<size_t>(1, env_->documents.size())));
}

void UserModel::SeedHistory() {
  const int saved_project = current_project_;
  for (size_t p = 0; p < env_->projects.size(); ++p) {
    current_project_ = static_cast<int>(p);
    const ProjectInfo& proj = env_->projects[p];
    const Pid editor = ForkExec(login_shell_, env_->editor);
    if (editor >= 0) {
      tracer_->Chdir(editor, proj.dir);
      for (const auto& note : proj.notes) {
        const auto r = tracer_->Open(editor, note, false);
        if (r.ok()) {
          tracer_->Close(editor, r.fd);
        }
      }
      tracer_->Exit(editor);
    }
    BuildProject(login_shell_, proj, /*multitask=*/false);
  }
  current_project_ = saved_project;

  const Pid reader = ForkExec(login_shell_, env_->pager);
  if (reader >= 0) {
    for (const auto& doc : env_->documents) {
      const auto r = tracer_->Open(reader, doc.path, false);
      if (r.ok()) {
        tracer_->Close(reader, r.fd);
      }
      for (const auto& support : doc.support) {
        const auto s = tracer_->Open(reader, support, false);
        if (s.ok()) {
          tracer_->Close(reader, s.fd);
        }
      }
    }
    // The favoured optional files have been probed before, too.
    for (size_t i = 0; i < env_->misc_files.size() && i < 12; ++i) {
      const auto r = tracer_->Open(reader, env_->misc_files[i], false);
      if (r.ok()) {
        tracer_->Close(reader, r.fd);
      }
    }
    for (const auto& folder : env_->mail_folders) {
      const auto r = tracer_->Open(reader, folder, false);
      if (r.ok()) {
        tracer_->Close(reader, r.fd);
      }
    }
    tracer_->Exit(reader);
  }
  MailSession(login_shell_);
  // The machine has seen find scans before, so the observer's program
  // history already knows find is meaningless when tracing begins.
  FindScan(login_shell_);
  FindScan(login_shell_);
}

void UserModel::RunOneSession() {
  ++sessions_run_;
  PickNextProject();

  if (rng_.NextBool(config_.find_prob)) {
    FindScan(login_shell_);
  }
  if (rng_.NextBool(config_.ls_prob)) {
    LsSession(login_shell_);
  }

  // Severity-4 preload wish: the user notices something worth hoarding for
  // later without needing it now (Section 4.4).
  if (availability_ && miss_log_ != nullptr && rng_.NextBool(config_.preload_note_prob) &&
      !env_->misc_files.empty()) {
    const auto& path = env_->misc_files[rng_.NextBounded(env_->misc_files.size())];
    if (!Available(path)) {
      miss_log_->RecordManual(path, tracer_->clock()->now(), MissSeverity::kPreload);
    }
  }

  const double total =
      config_.dev_weight + config_.doc_weight + config_.mail_weight;
  const double roll = rng_.NextDouble() * (total > 0 ? total : 1.0);
  if (roll < config_.dev_weight) {
    DevSession(login_shell_);
  } else if (roll < config_.dev_weight + config_.doc_weight) {
    DocSession(login_shell_);
  } else {
    MailSession(login_shell_);
  }

  Think(config_.mean_session_gap_seconds);
}

void UserModel::RunUntil(Time target) {
  while (tracer_->clock()->now() < target) {
    RunOneSession();
  }
}

void UserModel::RunActiveHours(double hours) {
  RunUntil(tracer_->clock()->now() + static_cast<Time>(hours * 3600.0 * kMicrosPerSecond));
}

}  // namespace seer
