// Synthetic user behaviour model.
//
// Generates the reference streams the paper's evaluation depends on, by
// driving syscalls through the SyscallTracer:
//   * software development sessions — edit/compile/link cycles where the
//     compiler holds the source open while headers cycle (the motivating
//     example for lifetime semantic distance, Section 3.1.1), with make
//     basing decisions on attribute examination (Section 4.8);
//   * document and mail sessions (other projects, for attention shifts);
//   * noise the observer must reject: find scans (Section 4.1), getcwd
//     walks inside the editor (Section 4.1), shared-library opens on every
//     exec (Section 4.2), temporary files (Section 4.5);
//   * multitasking: mail is read while a long build runs, interleaving
//     independent reference streams (Section 4.7);
//   * disconnection awareness: like the paper's users (Section 5.2.2), the
//     simulated user knows roughly what is hoarded, mostly works on
//     available projects, occasionally trips over a missing file and
//     reports it at an appropriate severity (Section 4.4).
#ifndef SRC_WORKLOAD_USER_MODEL_H_
#define SRC_WORKLOAD_USER_MODEL_H_

#include <functional>
#include <string>
#include <vector>

#include "src/core/hoard.h"
#include "src/process/syscall_tracer.h"
#include "src/util/rng.h"
#include "src/workload/environment.h"

namespace seer {

struct UserModelConfig {
  // Session mix (weights, normalised internally).
  double dev_weight = 0.55;
  double doc_weight = 0.20;
  double mail_weight = 0.25;

  // Probability of switching to a different project between sessions —
  // the attention shifts where LRU hoarding falls apart (Section 6.1).
  double attention_shift_prob = 0.15;

  // Noise generators.
  double find_prob = 0.02;     // run a find scan before a session
  double ls_prob = 0.15;       // list the project directory before a session
  double getcwd_prob = 0.25;   // editor asks for its working directory
  double misc_probe_prob = 0.01;  // app probes an optional rarely-used file

  // Multitasking: probability that a build is accompanied by concurrent
  // mail reading.
  double multitask_prob = 0.5;

  // Mean think-time between sessions, seconds (exponential).
  double mean_session_gap_seconds = 240.0;
  // Mean per-action think time within a session, seconds.
  double mean_action_seconds = 8.0;

  // Disconnected behaviour.
  double unavailable_attempt_prob = 0.06;  // tries a non-hoarded project
  double preload_note_prob = 0.002;        // records a severity-4 preload wish
};

class UserModel {
 public:
  UserModel(SyscallTracer* tracer, const UserEnvironment* env, UserModelConfig config,
            uint64_t seed);

  // --- disconnection plumbing ---------------------------------------------

  // The user's (approximate) knowledge of what is hoarded. Null means
  // everything is available (connected).
  using Availability = std::function<bool(const std::string& path)>;
  void set_availability(Availability availability) { availability_ = std::move(availability); }

  // Where manual miss reports go while disconnected (may be null).
  void set_miss_log(MissLog* log) { miss_log_ = log; }

  // --- driving -------------------------------------------------------------

  // Runs sessions until the simulated clock reaches `target`.
  void RunUntil(Time target);

  // Runs sessions for the given number of active hours.
  void RunActiveHours(double hours);

  // Runs exactly one session (for tests).
  void RunOneSession();

  // Simulates the machine's pre-trace life: every project is built once,
  // every document opened, mail read, and the favoured optional files
  // probed. The paper's traces begin mid-way through a user's life, so
  // first-ever references to long-standing files are not representative;
  // seeding gives every hoarding algorithm the same mature starting
  // history.
  void SeedHistory();

  int current_project() const { return current_project_; }
  uint64_t sessions_run() const { return sessions_run_; }

 private:
  bool Available(const std::string& path) const;
  bool ProjectAvailable(int index) const;
  void Think(double mean_seconds);

  // Session bodies. All take the shell pid they fork from.
  void DevSession(Pid shell);
  void LsSession(Pid shell);
  void DocSession(Pid shell);
  void MailSession(Pid shell);
  void FindScan(Pid shell);
  void GetcwdWalk(Pid pid, const std::string& dir);
  void BuildProject(Pid shell, const ProjectInfo& proj, bool multitask);
  void CompileOne(Pid shell, const ProjectInfo& proj, size_t source_index);
  void EditFile(Pid editor, const std::string& path);
  void MaybeProbeMisc(Pid pid);
  void OpenSharedLibs(Pid pid);
  Pid ForkExec(Pid shell, const std::string& program);

  // Attempts to open `path`; on a kNotLocal failure records a miss at
  // `severity` (manual reports only when the user notices, i.e. severity
  // better than kMinor or explicitly requested). Returns the fd or -1.
  Fd OpenOrMiss(Pid pid, const std::string& path, bool write, MissSeverity severity,
                bool report_manual);

  // Severity the user assigns when a primary work file is missing: usually
  // they fall back within the task (the paper's misses were dominated by
  // severities 2-3; severity 1 was rare).
  MissSeverity DrawWorkMissSeverity();

  void PickNextProject();

  SyscallTracer* tracer_;
  const UserEnvironment* env_;
  UserModelConfig config_;
  Rng rng_;
  Availability availability_;
  MissLog* miss_log_ = nullptr;

  Pid login_shell_ = -1;
  int current_project_ = 0;
  int current_document_ = 0;
  uint64_t sessions_run_ = 0;
  std::vector<bool> project_built_;
};

}  // namespace seer

#endif  // SRC_WORKLOAD_USER_MODEL_H_
