// Synthetic user environment builder.
//
// The paper's evaluation used multi-month traces from nine real users'
// laptops — data we cannot have. This builder populates a SimFilesystem
// with a realistic 1990s-UNIX-workstation namespace (system binaries,
// shared libraries, /etc, /dev, system headers, dot-files) plus a
// parameterised user home: software projects with genuine #include
// structure and Makefiles, documents, and mail. The UserEnvironment handle
// it returns tells the workload generators where everything is; the
// reference patterns those generators produce exhibit the semantic locality
// SEER exploits (projects, attention shifts) as well as the noise it must
// reject (find scans, getcwd, shared libraries, temporaries).
#ifndef SRC_WORKLOAD_ENVIRONMENT_H_
#define SRC_WORKLOAD_ENVIRONMENT_H_

#include <string>
#include <vector>

#include "src/util/rng.h"
#include "src/vfs/sim_filesystem.h"

namespace seer {

struct ProjectInfo {
  std::string dir;
  std::string makefile;
  std::string binary;                 // build output (exists after first build)
  std::vector<std::string> sources;   // .c files
  std::vector<std::string> headers;   // .h files
  std::vector<std::string> objects;   // .o files (created by builds)
  std::vector<std::string> notes;     // README / TODO / design notes
};

struct DocumentInfo {
  std::string path;                   // the document itself
  std::vector<std::string> support;   // style files, figures, bibliography
};

struct UserEnvironment {
  std::string home;
  std::vector<ProjectInfo> projects;
  std::vector<DocumentInfo> documents;
  std::string mailbox;                       // inbox
  std::vector<std::string> mail_folders;
  std::vector<std::string> dot_files;        // ~/.login etc.
  std::vector<std::string> shared_libs;      // /lib/libc.so ...
  std::vector<std::string> system_headers;   // /usr/include/...
  std::vector<std::string> misc_files;       // rarely used clutter

  // Tool binaries the workloads exec.
  std::string sh = "/bin/sh";
  std::string editor = "/usr/bin/emacs";
  std::string compiler = "/usr/bin/cc";
  std::string linker = "/usr/bin/ld";
  std::string make = "/usr/bin/make";
  std::string find = "/usr/bin/find";
  std::string mailer = "/usr/bin/mail";
  std::string formatter = "/usr/bin/troff";
  std::string pager = "/usr/bin/less";
  std::string ls = "/bin/ls";
};

struct EnvironmentConfig {
  std::string user = "user";
  int num_projects = 6;
  int sources_per_project = 8;
  int headers_per_project = 5;
  int includes_per_source = 3;  // project headers included per source
  int notes_per_project = 2;
  int num_documents = 4;
  int support_per_document = 3;
  int num_mail_folders = 4;
  int num_misc_files = 240;     // unused clutter (wastage; Section 5.2.1)
  int num_system_headers = 40;

  // Size scale multiplier; 1.0 gives a working set of a few MB per project.
  double size_scale = 1.0;
};

// Builds the namespace into `fs` and returns the environment handle.
UserEnvironment BuildEnvironment(SimFilesystem* fs, const EnvironmentConfig& config, Rng* rng);

}  // namespace seer

#endif  // SRC_WORKLOAD_ENVIRONMENT_H_
