#include "src/util/fs.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define SEER_HAVE_FSYNC 1
#endif

namespace seer {

namespace {

Status ErrnoStatus(const std::string& op, const std::string& path) {
  return Status::IoError(op + " " + path + ": " + std::strerror(errno));
}

// fsync by path. On platforms without fsync this is a no-op: the write
// still happened, we just lose the durability barrier.
Status SyncPath(const std::string& path, bool directory) {
#ifdef SEER_HAVE_FSYNC
  const int flags = directory ? O_RDONLY | O_DIRECTORY : O_RDONLY;
  const int fd = ::open(path.c_str(), flags);
  if (fd < 0) {
    return ErrnoStatus("open for fsync", path);
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return ErrnoStatus("fsync", path);
  }
#else
  (void)path;
  (void)directory;
#endif
  return Status::Ok();
}

Status WriteMode(const std::string& path, std::string_view data, const char* mode) {
  std::FILE* f = std::fopen(path.c_str(), mode);
  if (f == nullptr) {
    return ErrnoStatus("open", path);
  }
  if (!data.empty() && std::fwrite(data.data(), 1, data.size(), f) != data.size()) {
    std::fclose(f);
    return ErrnoStatus("write", path);
  }
  if (std::fclose(f) != 0) {
    return ErrnoStatus("close", path);
  }
  return Status::Ok();
}

}  // namespace

StatusOr<std::string> RealFs::ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (errno == ENOENT) {
      return Status::NotFound("no such file: " + path);
    }
    return ErrnoStatus("open", path);
  }
  std::string out;
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  const bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) {
    return ErrnoStatus("read", path);
  }
  return out;
}

Status RealFs::WriteFile(const std::string& path, std::string_view data) {
  return WriteMode(path, data, "wb");
}

Status RealFs::AppendFile(const std::string& path, std::string_view data) {
  return WriteMode(path, data, "ab");
}

Status RealFs::RenameFile(const std::string& from, const std::string& to) {
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    return ErrnoStatus("rename", from + " -> " + to);
  }
  return Status::Ok();
}

Status RealFs::RemoveFile(const std::string& path) {
  if (std::remove(path.c_str()) != 0) {
    return ErrnoStatus("remove", path);
  }
  return Status::Ok();
}

StatusOr<std::vector<std::string>> RealFs::ListDir(const std::string& dir) {
  std::error_code ec;
  std::vector<std::string> out;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    return Status::IoError("listdir " + dir + ": " + ec.message());
  }
  for (const auto& entry : it) {
    out.push_back(entry.path().filename().string());
  }
  return out;
}

Status RealFs::MakeDirs(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("mkdir " + dir + ": " + ec.message());
  }
  return Status::Ok();
}

Status RealFs::SyncFile(const std::string& path) { return SyncPath(path, /*directory=*/false); }

Status RealFs::SyncDir(const std::string& dir) { return SyncPath(dir, /*directory=*/true); }

bool RealFs::Exists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::exists(path, ec);
}

StatusOr<uint64_t> RealFs::FileSize(const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) {
    return Status::IoError("stat " + path + ": " + ec.message());
  }
  return static_cast<uint64_t>(size);
}

Fs& DefaultFs() {
  static RealFs* fs = new RealFs();
  return *fs;
}

// --- MemFs --------------------------------------------------------------------

std::string MemFs::ParentOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) {
    return "";
  }
  if (slash == 0) {
    return "/";
  }
  return path.substr(0, slash);
}

bool MemFs::DirExistsLocked(const std::string& dir) const {
  return dir.empty() || dir == "/" || dir == "." || dirs_.count(dir) != 0;
}

StatusOr<std::string> MemFs::ReadFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound("read " + path + ": no such file");
  }
  return it->second;
}

Status MemFs::WriteFile(const std::string& path, std::string_view data) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!DirExistsLocked(ParentOf(path))) {
    return Status::IoError("write " + path + ": no such directory");
  }
  files_[path].assign(data.data(), data.size());
  return Status::Ok();
}

Status MemFs::AppendFile(const std::string& path, std::string_view data) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!DirExistsLocked(ParentOf(path))) {
    return Status::IoError("append " + path + ": no such directory");
  }
  files_[path].append(data.data(), data.size());
  return Status::Ok();
}

Status MemFs::RenameFile(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = files_.find(from);
  if (it == files_.end()) {
    return Status::NotFound("rename " + from + ": no such file");
  }
  if (from == to) {
    return Status::Ok();  // POSIX: renaming a file onto itself is a no-op
  }
  if (!DirExistsLocked(ParentOf(to))) {
    return Status::IoError("rename to " + to + ": no such directory");
  }
  files_[to] = std::move(it->second);
  files_.erase(it);
  return Status::Ok();
}

Status MemFs::RemoveFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (files_.erase(path) == 0) {
    return Status::NotFound("remove " + path + ": no such file");
  }
  return Status::Ok();
}

StatusOr<std::vector<std::string>> MemFs::ListDir(const std::string& dir) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!DirExistsLocked(dir)) {
    return Status::NotFound("list " + dir + ": no such directory");
  }
  const std::string prefix = dir.empty() || dir.back() == '/' ? dir : dir + "/";
  std::set<std::string> names;
  const auto collect = [&](const std::string& path) {
    if (path.size() <= prefix.size() || path.compare(0, prefix.size(), prefix) != 0) {
      return;
    }
    const std::string rest = path.substr(prefix.size());
    names.insert(rest.substr(0, rest.find('/')));
  };
  for (const auto& [path, bytes] : files_) {
    (void)bytes;
    collect(path);
  }
  for (const std::string& d : dirs_) {
    collect(d);
  }
  return std::vector<std::string>(names.begin(), names.end());
}

Status MemFs::MakeDirs(const std::string& dir) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string norm = dir;
  while (norm.size() > 1 && norm.back() == '/') {
    norm.pop_back();
  }
  for (size_t i = 1; i <= norm.size(); ++i) {
    if (i == norm.size() || norm[i] == '/') {
      const std::string prefix = norm.substr(0, i);
      if (prefix != "/") {
        dirs_.insert(prefix);
      }
    }
  }
  return Status::Ok();
}

Status MemFs::SyncFile(const std::string& path) {
  (void)path;
  return Status::Ok();
}

Status MemFs::SyncDir(const std::string& dir) {
  (void)dir;
  return Status::Ok();
}

bool MemFs::Exists(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  return files_.count(path) != 0 || dirs_.count(path) != 0;
}

StatusOr<uint64_t> MemFs::FileSize(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound("stat " + path + ": no such file");
  }
  return static_cast<uint64_t>(it->second.size());
}

uint64_t MemFs::TotalBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t total = 0;
  for (const auto& [path, bytes] : files_) {
    (void)path;
    total += bytes.size();
  }
  return total;
}

// --- FaultFs ------------------------------------------------------------------

FaultFs::Action FaultFs::NextOp() {
  const uint64_t op = op_count_++;
  if (crashed_) {
    return Action::kCrash;
  }
  if (op == plan_.short_write_at_op) {
    crashed_ = true;
    return Action::kShortWrite;
  }
  if (op == plan_.crash_at_op) {
    crashed_ = true;
    return Action::kCrash;
  }
  return Action::kProceed;
}

StatusOr<std::string> FaultFs::ReadFile(const std::string& path) {
  if (crashed_) {
    return CrashedStatus();
  }
  return base_->ReadFile(path);
}

Status FaultFs::WriteFile(const std::string& path, std::string_view data) {
  switch (NextOp()) {
    case Action::kCrash:
      return CrashedStatus();
    case Action::kShortWrite: {
      const size_t keep = static_cast<size_t>(data.size() * plan_.short_write_fraction);
      // The torn prefix reaches the disk; the caller sees the crash.
      (void)base_->WriteFile(path, data.substr(0, keep));
      return CrashedStatus();
    }
    case Action::kProceed:
      return base_->WriteFile(path, data);
  }
  return Status::Internal("unreachable");
}

Status FaultFs::AppendFile(const std::string& path, std::string_view data) {
  switch (NextOp()) {
    case Action::kCrash:
      return CrashedStatus();
    case Action::kShortWrite: {
      const size_t keep = static_cast<size_t>(data.size() * plan_.short_write_fraction);
      (void)base_->AppendFile(path, data.substr(0, keep));
      return CrashedStatus();
    }
    case Action::kProceed:
      return base_->AppendFile(path, data);
  }
  return Status::Internal("unreachable");
}

Status FaultFs::RenameFile(const std::string& from, const std::string& to) {
  if (NextOp() != Action::kProceed) {
    return CrashedStatus();
  }
  return base_->RenameFile(from, to);
}

Status FaultFs::RemoveFile(const std::string& path) {
  if (NextOp() != Action::kProceed) {
    return CrashedStatus();
  }
  return base_->RemoveFile(path);
}

StatusOr<std::vector<std::string>> FaultFs::ListDir(const std::string& dir) {
  if (crashed_) {
    return CrashedStatus();
  }
  return base_->ListDir(dir);
}

Status FaultFs::MakeDirs(const std::string& dir) {
  if (NextOp() != Action::kProceed) {
    return CrashedStatus();
  }
  return base_->MakeDirs(dir);
}

Status FaultFs::SyncFile(const std::string& path) {
  if (NextOp() != Action::kProceed) {
    return CrashedStatus();
  }
  return base_->SyncFile(path);
}

Status FaultFs::SyncDir(const std::string& dir) {
  if (NextOp() != Action::kProceed) {
    return CrashedStatus();
  }
  return base_->SyncDir(dir);
}

bool FaultFs::Exists(const std::string& path) {
  return crashed_ ? false : base_->Exists(path);
}

StatusOr<uint64_t> FaultFs::FileSize(const std::string& path) {
  if (crashed_) {
    return CrashedStatus();
  }
  return base_->FileSize(path);
}

}  // namespace seer
