// Value-returned error handling for the persistence and I/O surfaces.
//
// SEER's original parsers reported failure through `std::string* error`
// out-params, which made error paths easy to ignore and impossible to
// compose. Status carries an error code plus a human-readable message;
// StatusOr<T> is either a value or a non-OK Status. The durability layer
// (snapshot store, WAL) threads these through every fallible operation so
// a torn write surfaces as a typed kDataLoss instead of a silent nullptr.
#ifndef SRC_UTIL_STATUS_H_
#define SRC_UTIL_STATUS_H_

#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace seer {

enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,     // malformed input the caller handed us
  kNotFound,            // named thing does not exist
  kAlreadyExists,       // creation collided with an existing object
  kFailedPrecondition,  // operation illegal in the current state
  kIoError,             // the filesystem said no
  kDataLoss,            // corruption detected (bad CRC, torn record)
  kInternal,            // invariant violation; a bug
};

std::string_view StatusCodeName(StatusCode code);

class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) { return Status(StatusCode::kNotFound, std::move(m)); }
  static Status AlreadyExists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status IoError(std::string m) { return Status(StatusCode::kIoError, std::move(m)); }
  static Status DataLoss(std::string m) { return Status(StatusCode::kDataLoss, std::move(m)); }
  static Status Internal(std::string m) { return Status(StatusCode::kInternal, std::move(m)); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "DATA_LOSS: files section: bad crc" — or "OK".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& out, const Status& status);

// A value of type T, or the Status explaining why there is none.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  // Implicit from a non-OK Status (an OK status without a value is a bug).
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!status_.ok());
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr constructed from OK status");
    }
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return value_.has_value(); }
  bool has_value() const { return ok(); }  // optional-style spelling

  const Status& status() const { return status_; }

  T& value() & {
    CheckHasValue();
    return *value_;
  }
  const T& value() const& {
    CheckHasValue();
    return *value_;
  }
  T&& value() && {
    CheckHasValue();
    return *std::move(value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  void CheckHasValue() const {
    if (!value_.has_value()) {
      std::abort();  // accessing value() of a failed StatusOr
    }
  }

  Status status_;
  std::optional<T> value_;
};

// Propagates a non-OK Status to the caller.
#define SEER_RETURN_IF_ERROR(expr)                 \
  do {                                             \
    ::seer::Status seer_status_macro_tmp = (expr); \
    if (!seer_status_macro_tmp.ok()) {             \
      return seer_status_macro_tmp;                \
    }                                              \
  } while (false)

// Unwraps a StatusOr into `lhs`, propagating failure to the caller.
#define SEER_ASSIGN_OR_RETURN(lhs, rexpr) \
  SEER_ASSIGN_OR_RETURN_IMPL_(SEER_STATUS_CONCAT_(seer_statusor_, __LINE__), lhs, rexpr)

#define SEER_STATUS_CONCAT_(a, b) SEER_STATUS_CONCAT_IMPL_(a, b)
#define SEER_STATUS_CONCAT_IMPL_(a, b) a##b
#define SEER_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) {                                   \
    return tmp.status();                             \
  }                                                  \
  lhs = *std::move(tmp)

}  // namespace seer

#endif  // SRC_UTIL_STATUS_H_
