// Disjoint-set union with union by size and path halving.
//
// The clustering phase-one merge is a straight DSU pass. Path halving alone
// is not enough: an adversarial merge order (always uniting a singleton's
// root UNDER a long chain) keeps Find near-linear, because halving only
// compresses the path actually walked. Union by size bounds tree height at
// log2(n) regardless of merge order, and halving then flattens the trees
// the walks actually touch.
#ifndef SRC_UTIL_DSU_H_
#define SRC_UTIL_DSU_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace seer {

class Dsu {
 public:
  explicit Dsu(size_t n) : parent_(n), size_(n, 1) {
    for (size_t i = 0; i < n; ++i) {
      parent_[i] = static_cast<uint32_t>(i);
    }
  }

  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  void Union(uint32_t a, uint32_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) {
      return;
    }
    // Union by size: the smaller tree hangs under the larger root, so no
    // chain can exceed log2(n) links even before halving compresses it.
    if (size_[a] < size_[b]) {
      const uint32_t t = a;
      a = b;
      b = t;
    }
    parent_[b] = a;
    size_[a] += size_[b];
  }

  // Links from x to its root, without compressing — the regression surface
  // for the union-by-size bound (<= log2(n) for any merge order).
  size_t ChainLength(uint32_t x) const {
    size_t length = 0;
    while (parent_[x] != x) {
      x = parent_[x];
      ++length;
    }
    return length;
  }

 private:
  std::vector<uint32_t> parent_;
  std::vector<uint32_t> size_;
};

}  // namespace seer

#endif  // SRC_UTIL_DSU_H_
