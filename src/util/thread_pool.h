// A small chunked-parallel-for thread pool.
//
// SEER's batch phases (cluster scoring, CSR packing) are embarrassingly
// parallel over files once the relation lists are fixed, so the only
// primitive needed is a blocking parallel-for with dynamic load balancing:
// callers split their work into chunks, workers claim chunks from a shared
// atomic counter (cheap work stealing), and ParallelChunks returns when
// every chunk has run. The calling thread participates, so a pool built
// with threads == 1 spawns no workers at all and runs strictly inline —
// the serial and parallel code paths are the same code.
//
// The pool is not re-entrant: one ParallelChunks call at a time.
#ifndef SRC_UTIL_THREAD_POOL_H_
#define SRC_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace seer {

// Worker count for a new pool: the SEER_THREADS environment variable when
// set to a positive integer, otherwise std::thread::hardware_concurrency().
// Honoured everywhere a pool is created (clustering, benches, seerctl).
int DefaultThreadCount();

class ThreadPool {
 public:
  // threads <= 0 selects DefaultThreadCount(). The pool keeps threads-1
  // workers; the caller is the remaining thread.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const { return static_cast<int>(workers_.size()) + 1; }

  // Runs fn(chunk) for every chunk in [0, num_chunks), distributed over the
  // pool plus the calling thread, and blocks until all chunks complete.
  // fn must not throw.
  void ParallelChunks(size_t num_chunks, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(size_t)>* job_ = nullptr;
  std::atomic<size_t> next_chunk_{0};
  size_t total_chunks_ = 0;
  size_t active_ = 0;  // workers that have not finished the current job
  uint64_t generation_ = 0;
  bool stopping_ = false;
};

}  // namespace seer

#endif  // SRC_UTIL_THREAD_POOL_H_
