// A small chunked-parallel-for thread pool.
//
// SEER's batch phases (cluster scoring, CSR packing) are embarrassingly
// parallel over files once the relation lists are fixed, so the only
// primitive needed is a blocking parallel-for with dynamic load balancing:
// callers split their work into chunks, workers claim chunks from a shared
// atomic counter (cheap work stealing), and ParallelChunks returns when
// every chunk has run. The calling thread participates, so a pool built
// with threads == 1 spawns no workers at all and runs strictly inline —
// the serial and parallel code paths are the same code.
//
// The pool is shareable: ParallelChunks may be called from any thread at
// any time. One dispatch owns the workers at a time; a call that arrives
// while another dispatch is running — including a re-entrant call from
// inside any chunk, whether it ran on a worker or on the dispatching
// thread itself — degrades to running its chunks inline on the calling
// thread. Inline execution is the same code as the serial path, so
// sharing one pool across subsystems (the multi-tenant router multiplexes
// ingest, cluster scoring, and checkpoint encode over a single pool) never
// deadlocks and never changes results, only the degree of parallelism.
#ifndef SRC_UTIL_THREAD_POOL_H_
#define SRC_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

#include "src/util/status.h"

namespace seer {

// Strict thread-count parse: a positive decimal integer with no leading or
// trailing garbage, at most kMaxThreads. Zero, negatives, overflow, and
// non-numeric text are errors — never a silent fallback.
constexpr int kMaxThreads = 4096;
StatusOr<int> ParseThreadCount(std::string_view text);

// The SEER_THREADS environment variable, validated: Ok(0) when unset (the
// caller picks its own default), Ok(n > 0) when set to a valid count, and
// an InvalidArgument status naming the bad value otherwise. seerctl and
// the benches fail fast on the error; DefaultThreadCount() warns once.
StatusOr<int> SeerThreadsFromEnv();

// Worker count for a new pool: the validated SEER_THREADS when set,
// otherwise std::thread::hardware_concurrency(). An *invalid* SEER_THREADS
// is reported to stderr once per process and then ignored (constructors
// cannot propagate a Status); front ends validate SeerThreadsFromEnv()
// at startup so a user-facing run dies with the real error instead.
int DefaultThreadCount();

class ThreadPool {
 public:
  // threads <= 0 selects DefaultThreadCount(). The pool keeps threads-1
  // workers; the caller is the remaining thread.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const { return static_cast<int>(workers_.size()) + 1; }

  // Runs fn(chunk) for every chunk in [0, num_chunks), distributed over the
  // pool plus the calling thread, and blocks until all chunks complete.
  // fn must not throw. Safe to call concurrently from several threads and
  // re-entrantly from inside a chunk: the workers serve one dispatch at a
  // time, every other call runs its chunks inline on the calling thread.
  void ParallelChunks(size_t num_chunks, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  // Serializes dispatches: held for the whole span of one distributed
  // ParallelChunks. Contenders don't wait — they run inline (see header
  // comment), so a held gate never blocks progress.
  std::mutex gate_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(size_t)>* job_ = nullptr;
  std::atomic<size_t> next_chunk_{0};
  size_t total_chunks_ = 0;
  size_t active_ = 0;  // workers that have not finished the current job
  uint64_t generation_ = 0;
  bool stopping_ = false;
};

}  // namespace seer

#endif  // SRC_UTIL_THREAD_POOL_H_
