// Process-wide path interning.
//
// SEER's observer must add "at most microseconds" to every traced syscall
// (Sections 2, 5.3), yet a pathname crosses four layers on its way to the
// relation table. Interning maps each normalised absolute path to a dense
// PathId exactly once, at the observer boundary; every layer downstream of
// the observer (ReferenceSink, the async queue, the file table, the hoard
// and reorganizer query surfaces) carries the 32-bit id instead of the
// string. Strings reappear only at user-facing egress (hoard listings,
// seerctl output, the persistence format).
//
// The interner is append-only: a PathId, once assigned, refers to the same
// spelling forever. Rename is NOT an interner operation — the observer
// interns both names and emits OnFileRenamed(from_id, to_id); the
// correlator's FileTable re-binds the new PathId to the existing FileId so
// relation data survives (Section 4.8). Append-only storage is what makes
// the returned string_views stable and the table safely shareable between
// the observer thread and the async correlator's worker.
#ifndef SRC_UTIL_PATH_INTERNER_H_
#define SRC_UTIL_PATH_INTERNER_H_

#include <cstdint>
#include <deque>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace seer {

using PathId = uint32_t;
constexpr PathId kInvalidPathId = static_cast<PathId>(-1);

class PathInterner {
 public:
  PathInterner() = default;
  PathInterner(const PathInterner&) = delete;
  PathInterner& operator=(const PathInterner&) = delete;

  // Returns the id for `path`, assigning the next dense id on first sight.
  // Steady state (path already known) takes a shared lock and allocates
  // nothing.
  PathId Intern(std::string_view path);

  // Lookup without creating; kInvalidPathId when absent.
  PathId Find(std::string_view path) const;

  // The interned spelling. Views are stable for the interner's lifetime
  // (storage is append-only and never moves). Empty view for
  // kInvalidPathId or out-of-range ids.
  std::string_view PathOf(PathId id) const;

  size_t size() const;

 private:
  mutable std::shared_mutex mutex_;
  // Deque: growth never moves existing strings, so string_views into them
  // (including the map keys below) stay valid without a second copy.
  std::deque<std::string> storage_;
  std::unordered_map<std::string_view, PathId> by_path_;
};

// The process-wide interner every SEER component shares. Ids are never
// recycled, so tests constructing many observers/correlators in one
// process simply accumulate entries.
PathInterner& GlobalPaths();

// Convenience egress helper: the interned spelling of `id` as a copyable
// string (empty for kInvalidPathId).
std::string PathString(PathId id);

}  // namespace seer

#endif  // SRC_UTIL_PATH_INTERNER_H_
