// Filesystem access for the durability layer, behind a narrow interface.
//
// The snapshot store and WAL never touch the OS directly; they go through
// Fs so tests can interpose FaultFs, a fault-injection shim that simulates
// a crash at any chosen operation — including a short (torn) write that
// leaves a partial file behind, exactly what a power cut mid-write does.
// RealFs is the production implementation: plain files plus fsync, with
// directory fsync after renames so the atomic-rename commit protocol is
// durable, not just atomic.
#ifndef SRC_UTIL_FS_H_
#define SRC_UTIL_FS_H_

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.h"

namespace seer {

class Fs {
 public:
  virtual ~Fs() = default;

  virtual StatusOr<std::string> ReadFile(const std::string& path) = 0;
  // Creates or truncates. Not atomic — callers wanting atomicity write a
  // temp file, sync it, and RenameFile over the target.
  virtual Status WriteFile(const std::string& path, std::string_view data) = 0;
  // Appends, creating the file if needed.
  virtual Status AppendFile(const std::string& path, std::string_view data) = 0;
  // Atomic replace (POSIX rename semantics).
  virtual Status RenameFile(const std::string& from, const std::string& to) = 0;
  virtual Status RemoveFile(const std::string& path) = 0;
  // Basenames of directory entries (files and subdirectories), unsorted.
  virtual StatusOr<std::vector<std::string>> ListDir(const std::string& dir) = 0;
  // mkdir -p.
  virtual Status MakeDirs(const std::string& dir) = 0;
  // fsync the file / directory contents to stable storage.
  virtual Status SyncFile(const std::string& path) = 0;
  virtual Status SyncDir(const std::string& dir) = 0;
  virtual bool Exists(const std::string& path) = 0;
  virtual StatusOr<uint64_t> FileSize(const std::string& path) = 0;
};

// The real thing: <filesystem> + stdio + fsync.
class RealFs : public Fs {
 public:
  StatusOr<std::string> ReadFile(const std::string& path) override;
  Status WriteFile(const std::string& path, std::string_view data) override;
  Status AppendFile(const std::string& path, std::string_view data) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  StatusOr<std::vector<std::string>> ListDir(const std::string& dir) override;
  Status MakeDirs(const std::string& dir) override;
  Status SyncFile(const std::string& path) override;
  Status SyncDir(const std::string& dir) override;
  bool Exists(const std::string& path) override;
  StatusOr<uint64_t> FileSize(const std::string& path) override;
};

// The process-wide RealFs used when a component is handed no Fs.
Fs& DefaultFs();

// Fully in-memory Fs: files are strings in a map, directories a set.
// Sync operations are no-ops (there is no volatile cache to flush). Used
// where the store protocol matters but the disk does not: the multitenant
// bench drives thousands of per-tenant snapshot stores without turning
// the run into an fsync benchmark, and tests avoid temp-dir churn.
// Thread-safe: the checkpoint plane writes from background threads.
class MemFs : public Fs {
 public:
  StatusOr<std::string> ReadFile(const std::string& path) override;
  Status WriteFile(const std::string& path, std::string_view data) override;
  Status AppendFile(const std::string& path, std::string_view data) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  StatusOr<std::vector<std::string>> ListDir(const std::string& dir) override;
  Status MakeDirs(const std::string& dir) override;
  Status SyncFile(const std::string& path) override;
  Status SyncDir(const std::string& dir) override;
  bool Exists(const std::string& path) override;
  StatusOr<uint64_t> FileSize(const std::string& path) override;

  // Total bytes held across all files (bench: on-disk footprint proxy).
  uint64_t TotalBytes() const;

 private:
  bool DirExistsLocked(const std::string& dir) const;
  static std::string ParentOf(const std::string& path);

  mutable std::mutex mutex_;
  std::map<std::string, std::string> files_;
  std::set<std::string> dirs_;
};

// Fault-injection decorator. Mutating operations (writes, appends,
// renames, removes, syncs) are numbered 0, 1, 2, ... in call order; the
// plan picks one to fail. After the chosen operation the shim enters the
// "crashed" state: every subsequent operation (reads included) fails
// without touching the underlying filesystem, so whatever the disk held at
// the crash point is exactly what recovery will see.
class FaultFs : public Fs {
 public:
  static constexpr uint64_t kNever = std::numeric_limits<uint64_t>::max();

  struct Plan {
    // Mutating op index at which the crash happens. The op itself does NOT
    // reach the disk (crash just before the write).
    uint64_t crash_at_op = kNever;
    // Mutating op index at which a WriteFile/AppendFile persists only a
    // prefix (a torn write) and then crashes. For non-write ops this
    // behaves like crash_at_op.
    uint64_t short_write_at_op = kNever;
    // Fraction of the payload a short write persists.
    double short_write_fraction = 0.5;
  };

  // Two constructors instead of `Plan plan = {}`: a `{}` default argument
  // can't use Plan's member initializers before FaultFs is complete.
  explicit FaultFs(Fs* base) : base_(base) {}
  FaultFs(Fs* base, Plan plan) : base_(base), plan_(plan) {}

  // Mutating operations attempted so far (counts ops that were refused
  // after the crash point too — useful for sizing kill matrices).
  uint64_t op_count() const { return op_count_; }
  bool crashed() const { return crashed_; }

  StatusOr<std::string> ReadFile(const std::string& path) override;
  Status WriteFile(const std::string& path, std::string_view data) override;
  Status AppendFile(const std::string& path, std::string_view data) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  StatusOr<std::vector<std::string>> ListDir(const std::string& dir) override;
  Status MakeDirs(const std::string& dir) override;
  Status SyncFile(const std::string& path) override;
  Status SyncDir(const std::string& dir) override;
  bool Exists(const std::string& path) override;
  StatusOr<uint64_t> FileSize(const std::string& path) override;

 private:
  // Returns the action for the next mutating op and advances the counter.
  enum class Action { kProceed, kCrash, kShortWrite };
  Action NextOp();
  Status CrashedStatus() const { return Status::IoError("FaultFs: simulated crash"); }

  Fs* base_;
  Plan plan_;
  uint64_t op_count_ = 0;
  bool crashed_ = false;
};

}  // namespace seer

#endif  // SRC_UTIL_FS_H_
