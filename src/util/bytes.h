// Little-endian byte packing for the binary persistence formats.
//
// Both the snapshot codec and the WAL serialise through these helpers so
// the on-disk encoding is explicit and platform-independent (fixed-width
// little-endian integers, IEEE-754 doubles as raw bits — hex-float-exact
// without any text parsing). ByteReader is fully bounds-checked: any
// over-read latches !ok() and returns zeros, so a truncated or corrupt
// buffer can never walk off the end.
#ifndef SRC_UTIL_BYTES_H_
#define SRC_UTIL_BYTES_H_

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>

namespace seer {

class ByteWriter {
 public:
  void PutU8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }
  void PutU64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutI32(int32_t v) { PutU32(static_cast<uint32_t>(v)); }
  void PutDouble(double v) { PutU64(std::bit_cast<uint64_t>(v)); }
  // u32 length prefix + raw bytes.
  void PutString(std::string_view s) {
    PutU32(static_cast<uint32_t>(s.size()));
    out_.append(s);
  }
  void PutBytes(std::string_view s) { out_.append(s); }

  const std::string& data() const { return out_; }
  std::string Take() { return std::move(out_); }
  size_t size() const { return out_.size(); }

 private:
  std::string out_;
};

class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  uint8_t GetU8() {
    if (!Need(1)) {
      return 0;
    }
    return static_cast<uint8_t>(data_[pos_++]);
  }
  uint32_t GetU32() {
    if (!Need(4)) {
      return 0;
    }
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_++])) << (8 * i);
    }
    return v;
  }
  uint64_t GetU64() {
    if (!Need(8)) {
      return 0;
    }
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_++])) << (8 * i);
    }
    return v;
  }
  int64_t GetI64() { return static_cast<int64_t>(GetU64()); }
  int32_t GetI32() { return static_cast<int32_t>(GetU32()); }
  double GetDouble() { return std::bit_cast<double>(GetU64()); }
  std::string_view GetString() {
    const uint32_t len = GetU32();
    if (!Need(len)) {
      return {};
    }
    const std::string_view s = data_.substr(pos_, len);
    pos_ += len;
    return s;
  }
  std::string_view GetBytes(size_t n) {
    if (!Need(n)) {
      return {};
    }
    const std::string_view s = data_.substr(pos_, n);
    pos_ += n;
    return s;
  }

  bool ok() const { return ok_; }
  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  bool Need(size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace seer

#endif  // SRC_UTIL_BYTES_H_
