// Open-addressing hash map for integral keys.
//
// The clustering engine's hot lookups (investigated-pair strengths, dense
// scratch indices) used std::unordered_map, whose node allocations and
// pointer chasing dominate at millions of probes per build. FlatMap is a
// single contiguous array with linear probing and power-of-two capacity:
// one cache line per hit in the common case, no per-entry allocation, and
// iteration is a linear scan. Erase uses backward-shift deletion (entries
// after the hole are shifted into it until the probe chain breaks), so the
// table stays tombstone-free and lookups never degrade under the
// reference streams' steady insert/expire churn.
#ifndef SRC_UTIL_FLAT_MAP_H_
#define SRC_UTIL_FLAT_MAP_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace seer {

template <typename K, typename V>
class FlatMap {
 public:
  // `empty_key` is reserved to mark unused slots and must never be inserted.
  explicit FlatMap(K empty_key, size_t initial_capacity = 16)
      : empty_key_(empty_key) {
    size_t capacity = 8;
    while (capacity < initial_capacity) {
      capacity <<= 1;
    }
    slots_.assign(capacity, Slot{empty_key_, V{}});
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Returns the value for `key`, default-constructing it if absent.
  // `inserted`, when non-null, reports whether the key was new.
  V& InsertOrGet(K key, bool* inserted = nullptr) {
    if ((size_ + 1) * 4 >= slots_.size() * 3) {
      Grow();
    }
    size_t i = Probe(key);
    if (slots_[i].key == empty_key_) {
      slots_[i].key = key;
      ++size_;
      if (inserted != nullptr) {
        *inserted = true;
      }
    } else if (inserted != nullptr) {
      *inserted = false;
    }
    return slots_[i].value;
  }

  V& operator[](K key) { return InsertOrGet(key); }

  const V* Find(K key) const {
    const size_t i = Probe(key);
    return slots_[i].key == empty_key_ ? nullptr : &slots_[i].value;
  }

  // Mutable lookup without insertion. The pointer is invalidated by any
  // insert (the table may grow) or erase (entries may shift).
  V* FindMutable(K key) {
    const size_t i = Probe(key);
    return slots_[i].key == empty_key_ ? nullptr : &slots_[i].value;
  }

  // Removes `key`; returns whether it was present. Backward-shift
  // deletion: every entry in the probe chain after the vacated slot that
  // hashes at or before it is moved back, so probing stays correct with no
  // tombstones and lookup cost is unchanged by any erase history.
  bool Erase(K key) {
    size_t i = Probe(key);
    if (slots_[i].key == empty_key_) {
      return false;
    }
    const size_t mask = slots_.size() - 1;
    size_t j = i;
    for (;;) {
      slots_[i].key = empty_key_;
      slots_[i].value = V{};
      for (;;) {
        j = (j + 1) & mask;
        if (slots_[j].key == empty_key_) {
          --size_;
          return true;
        }
        // Entry at j may move into the hole at i only if its home slot
        // lies cyclically outside (i, j] — i.e. probing from its home
        // reaches i before j.
        const size_t home = static_cast<size_t>(Hash(slots_[j].key)) & mask;
        if (j > i ? (home <= i || home > j) : (home <= i && home > j)) {
          break;
        }
      }
      slots_[i] = std::move(slots_[j]);
      i = j;
    }
  }

  void Clear() {
    for (Slot& slot : slots_) {
      slot.key = empty_key_;
      slot.value = V{};
    }
    size_ = 0;
  }

  // Visits every (key, value) pair in slot order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Slot& slot : slots_) {
      if (slot.key != empty_key_) {
        fn(slot.key, slot.value);
      }
    }
  }

  // Mutable visit: `fn` receives the key and a mutable value reference.
  // Keys must not be changed; do not insert or erase during the walk.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (Slot& slot : slots_) {
      if (slot.key != empty_key_) {
        fn(slot.key, slot.value);
      }
    }
  }

  size_t MemoryBytes() const { return slots_.capacity() * sizeof(Slot); }

 private:
  struct Slot {
    K key;
    V value;
  };

  static uint64_t Hash(K key) {
    // SplitMix64 finalizer: full avalanche for sequential ids and pair keys.
    uint64_t x = static_cast<uint64_t>(key);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
  }

  size_t Probe(K key) const {
    const size_t mask = slots_.size() - 1;
    size_t i = static_cast<size_t>(Hash(key)) & mask;
    while (slots_[i].key != empty_key_ && slots_[i].key != key) {
      i = (i + 1) & mask;
    }
    return i;
  }

  void Grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{empty_key_, V{}});
    for (Slot& slot : old) {
      if (slot.key != empty_key_) {
        const size_t i = Probe(slot.key);
        slots_[i] = std::move(slot);
      }
    }
  }

  std::vector<Slot> slots_;
  size_t size_ = 0;
  K empty_key_;
};

}  // namespace seer

#endif  // SRC_UTIL_FLAT_MAP_H_
