// Descriptive statistics used by SEER's evaluation harness.
//
// The paper reports mean, median, standard deviation, max, and 99%
// confidence intervals (Figure 2, Tables 3 and 5). `Summary` computes all of
// these from a sample vector; `RunningGeometricMean` implements the on-line
// geometric-mean reduction of Section 3.1.2; `Welford` provides an on-line
// mean/variance accumulator for streaming statistics.
#ifndef SRC_UTIL_STATS_H_
#define SRC_UTIL_STATS_H_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace seer {

// One-pass mean/variance accumulator (Welford's algorithm).
class Welford {
 public:
  void Add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
  }

  size_t count() const { return count_; }
  double Mean() const { return mean_; }

  // Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double Variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }

  double Stddev() const { return std::sqrt(Variance()); }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

// On-line geometric mean. The paper reduces the multiple semantic distances
// between two files to a single value with a geometric mean because small
// distances carry more significance than large ones (Section 3.1.2). We
// accumulate in log space to avoid overflow; a zero observation is mapped to
// a configurable floor (distance 0 is meaningful but log 0 is not).
class RunningGeometricMean {
 public:
  // `zero_floor` replaces zero observations; it must be in (0, 1] so that a
  // run of zero distances produces a mean below any nonzero distance.
  explicit RunningGeometricMean(double zero_floor = 0.5) : zero_floor_(zero_floor) {}

  void Add(double x) {
    const double v = x > 0.0 ? x : zero_floor_;
    log_sum_ += std::log(v);
    ++count_;
  }

  size_t count() const { return count_; }

  double Mean() const {
    return count_ == 0 ? 0.0 : std::exp(log_sum_ / static_cast<double>(count_));
  }

  // Serialisation support for persisting relation tables.
  double log_sum() const { return log_sum_; }
  void Restore(double log_sum, size_t count) {
    log_sum_ = log_sum;
    count_ = count;
  }

 private:
  double zero_floor_;
  double log_sum_ = 0.0;
  size_t count_ = 0;
};

// Arithmetic-mean counterpart kept for the ablation bench (the paper tried
// the arithmetic mean first and rejected it; bench/ablation_params shows why).
class RunningArithmeticMean {
 public:
  void Add(double x) {
    sum_ += x;
    ++count_;
  }
  size_t count() const { return count_; }
  double Mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }

 private:
  double sum_ = 0.0;
  size_t count_ = 0;
};

// Full-sample summary statistics.
struct Summary {
  size_t count = 0;
  double mean = 0.0;
  double median = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double total = 0.0;

  // Half-width of the 99% confidence interval for the mean (normal
  // approximation; the paper's CI bars in Figure 2 are reported the same
  // way, as +/- bounds about the mean).
  double ci99_half_width = 0.0;
};

// Computes a Summary from a sample. The input is copied (it must be sorted
// to find the median); callers on hot paths should use Welford instead.
Summary Summarize(std::vector<double> samples);

// Percentile with linear interpolation; p in [0, 100]. Sorts a copy.
double Percentile(std::vector<double> samples, double p);

}  // namespace seer

#endif  // SRC_UTIL_STATS_H_
