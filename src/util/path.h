// Pathname utilities.
//
// SEER's observer converts every reference to an absolute, normalised path
// before it reaches the correlator (Section 2), and the clustering stage
// uses a directory-distance measure that is zero for files in the same
// directory and grows with separation (Section 3.2). These helpers implement
// both, plus the dot-file test used by the critical-file heuristic
// (Section 4.3).
#ifndef SRC_UTIL_PATH_H_
#define SRC_UTIL_PATH_H_

#include <string>
#include <string_view>
#include <vector>

namespace seer {

// Splits a path into components, ignoring empty segments ("//" collapses).
std::vector<std::string> SplitPath(std::string_view path);

// Joins `base` and `rel`: if `rel` is absolute it wins; otherwise the two
// are concatenated and normalised.
std::string JoinPath(std::string_view base, std::string_view rel);

// Lexically normalises a path: collapses "//", resolves "." and "..".
// The result is absolute if the input was absolute. ".." at the root is
// dropped (as the kernel does).
std::string NormalizePath(std::string_view path);

// Converts `path` to absolute form against `cwd` (itself absolute), then
// normalises. This mirrors the observer's pathname canonicalisation.
std::string AbsolutePath(std::string_view cwd, std::string_view path);

// Directory part of a path ("/a/b/c" -> "/a/b"; "/a" -> "/"; "/" -> "/").
std::string Dirname(std::string_view path);

// Final component ("/a/b/c" -> "c"; "/" -> "").
std::string Basename(std::string_view path);

// True when the final component begins with '.', e.g. "/home/u/.login".
// Such files are excluded from SEER's control and always hoarded
// (Section 4.3).
bool IsDotFile(std::string_view path);

// True when `path` is lexically inside `dir` (or equal to it).
bool IsUnder(std::string_view path, std::string_view dir);

// Directory distance between two files (Section 3.2): 0 when the files
// share a directory, and otherwise the number of tree edges between the two
// containing directories (components removed from each side beyond the
// common prefix). "/a/b/x" vs "/a/b/y" -> 0; "/a/b/x" vs "/a/c/y" -> 2.
int DirectoryDistance(std::string_view path_a, std::string_view path_b);

// File extension without the dot ("foo.cc" -> "cc", none -> "").
std::string Extension(std::string_view path);

}  // namespace seer

#endif  // SRC_UTIL_PATH_H_
