// Deterministic pseudo-random number generation for simulations.
//
// All SEER simulations must be reproducible from a seed, so we ship our own
// small generator (xoshiro256**, seeded via SplitMix64) rather than relying
// on implementation-defined std::default_random_engine behaviour.
#ifndef SRC_UTIL_RNG_H_
#define SRC_UTIL_RNG_H_

#include <cmath>
#include <cstdint>
#include <limits>

namespace seer {

// SplitMix64: used to expand a single 64-bit seed into generator state.
// Reference: Sebastiano Vigna, http://prng.di.unimi.it/splitmix64.c
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

// xoshiro256**: fast, high-quality 64-bit generator.
// Satisfies the C++ UniformRandomBitGenerator requirements.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x5eedbeefcafef00dULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) {
      s = sm.Next();
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<uint64_t>::max(); }

  result_type operator()() { return Next(); }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  // Uniform integer in [0, bound). bound must be > 0. Uses rejection
  // sampling to avoid modulo bias.
  uint64_t NextBounded(uint64_t bound) {
    const uint64_t threshold = -bound % bound;
    for (;;) {
      const uint64_t r = Next();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(NextBounded(static_cast<uint64_t>(hi - lo + 1)));
  }

  // Bernoulli trial with success probability p.
  bool NextBool(double p) { return NextDouble() < p; }

  // Geometric distribution on {1, 2, ...} with success probability p.
  // Mean is 1/p. This is the distribution the paper uses for unknown file
  // sizes (p = 0.00007, mean ~14284 bytes).
  uint64_t NextGeometric(double p) {
    const double u = 1.0 - NextDouble();  // in (0, 1]
    const double v = std::log(u) / std::log1p(-p);
    return 1 + static_cast<uint64_t>(v);
  }

  // Exponential distribution with the given mean.
  double NextExponential(double mean) { return -mean * std::log(1.0 - NextDouble()); }

  // Log-normal distribution parameterised by the mean/sigma of the
  // underlying normal.
  double NextLogNormal(double mu, double sigma) { return std::exp(mu + sigma * NextNormal()); }

  // Standard normal via Box-Muller (one value per call; the pair's second
  // value is intentionally discarded to keep the generator state simple).
  double NextNormal() {
    double u1 = 1.0 - NextDouble();
    double u2 = NextDouble();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * 3.14159265358979323846 * u2);
  }

  // Zipf-like rank selection over [0, n): rank r is chosen with probability
  // proportional to 1/(r+1)^s. Used for skewed file popularity.
  uint64_t NextZipf(uint64_t n, double s);

  // Raw generator state, for checkpointing: a recovered correlator must
  // resume tie-breaking exactly where the crashed one left off, or replayed
  // updates diverge from the never-crashed run.
  void GetState(uint64_t out[4]) const {
    for (int i = 0; i < 4; ++i) {
      out[i] = state_[i];
    }
  }
  void SetState(const uint64_t in[4]) {
    for (int i = 0; i < 4; ++i) {
      state_[i] = in[i];
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace seer

#endif  // SRC_UTIL_RNG_H_
