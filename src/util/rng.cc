#include "src/util/rng.h"

namespace seer {

uint64_t Rng::NextZipf(uint64_t n, double s) {
  if (n == 0) {
    return 0;
  }
  // Inverse-CDF sampling by rejection against the continuous envelope
  // f(x) = x^-s on [1, n+1). Adequate for simulation-scale n.
  const double b = std::pow(static_cast<double>(n) + 1.0, 1.0 - s);
  for (;;) {
    const double u = NextDouble();
    const double x = std::pow(u * (b - 1.0) + 1.0, 1.0 / (1.0 - s));
    const uint64_t k = static_cast<uint64_t>(x);
    if (k >= 1 && k <= n) {
      const double ratio = std::pow(static_cast<double>(k) / x, s);
      if (NextDouble() < ratio) {
        return k - 1;
      }
    }
  }
}

}  // namespace seer
