#include "src/util/status.h"

namespace seer {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& out, const Status& status) {
  return out << status.ToString();
}

}  // namespace seer
