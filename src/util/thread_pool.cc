#include "src/util/thread_pool.h"

#include <cstdlib>

namespace seer {

int DefaultThreadCount() {
  if (const char* env = std::getenv("SEER_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) {
      return n;
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) {
    threads = DefaultThreadCount();
  }
  workers_.reserve(static_cast<size_t>(threads - 1));
  for (int i = 1; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
}

void ThreadPool::ParallelChunks(size_t num_chunks, const std::function<void(size_t)>& fn) {
  if (num_chunks == 0) {
    return;
  }
  if (workers_.empty() || num_chunks == 1) {
    for (size_t i = 0; i < num_chunks; ++i) {
      fn(i);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    total_chunks_ = num_chunks;
    next_chunk_.store(0, std::memory_order_relaxed);
    active_ = workers_.size();
    ++generation_;
  }
  work_cv_.notify_all();
  for (;;) {
    const size_t chunk = next_chunk_.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= num_chunks) {
      break;
    }
    fn(chunk);
  }
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return active_ == 0; });
  job_ = nullptr;
}

void ThreadPool::WorkerLoop() {
  uint64_t seen = 0;
  for (;;) {
    const std::function<void(size_t)>* job = nullptr;
    size_t total = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stopping_ || generation_ != seen; });
      if (stopping_) {
        return;
      }
      seen = generation_;
      job = job_;
      total = total_chunks_;
    }
    for (;;) {
      const size_t chunk = next_chunk_.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= total) {
        break;
      }
      (*job)(chunk);
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--active_ == 0) {
        done_cv_.notify_all();
      }
    }
  }
}

}  // namespace seer
