#include "src/util/thread_pool.h"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace seer {

namespace {

// Worker threads mark the pool they belong to, so a re-entrant
// ParallelChunks from inside a chunk is detected without any lock.
thread_local const ThreadPool* tls_worker_pool = nullptr;

}  // namespace

StatusOr<int> ParseThreadCount(std::string_view text) {
  if (text.empty()) {
    return Status::InvalidArgument("thread count is empty");
  }
  int value = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec == std::errc::result_out_of_range) {
    return Status::InvalidArgument("thread count '" + std::string(text) + "' overflows");
  }
  if (ec != std::errc() || ptr != end) {
    return Status::InvalidArgument("thread count '" + std::string(text) +
                                   "' is not a positive integer");
  }
  if (value <= 0) {
    return Status::InvalidArgument("thread count must be positive, got '" +
                                   std::string(text) + "'");
  }
  if (value > kMaxThreads) {
    return Status::InvalidArgument("thread count '" + std::string(text) + "' exceeds the cap of " +
                                   std::to_string(kMaxThreads));
  }
  return value;
}

StatusOr<int> SeerThreadsFromEnv() {
  const char* env = std::getenv("SEER_THREADS");
  if (env == nullptr) {
    return 0;
  }
  auto parsed = ParseThreadCount(env);
  if (!parsed.ok()) {
    return Status::InvalidArgument("SEER_THREADS: " + std::string(parsed.status().message()));
  }
  return *parsed;
}

int DefaultThreadCount() {
  const auto env = SeerThreadsFromEnv();
  if (env.ok() && *env > 0) {
    return *env;
  }
  if (!env.ok()) {
    static const bool warned = [&] {
      std::fprintf(stderr, "seer: %s; using hardware concurrency\n",
                   env.status().message().c_str());
      return true;
    }();
    (void)warned;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) {
    threads = DefaultThreadCount();
  }
  workers_.reserve(static_cast<size_t>(threads - 1));
  for (int i = 1; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  // A well-formed program has no dispatch running here (ParallelChunks
  // blocks its caller), but take the gate anyway so destruction waits out
  // a dispatch racing on another thread instead of corrupting it.
  std::lock_guard<std::mutex> gate(gate_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
}

void ThreadPool::ParallelChunks(size_t num_chunks, const std::function<void(size_t)>& fn) {
  if (num_chunks == 0) {
    return;
  }
  if (workers_.empty() || num_chunks == 1 || tls_worker_pool == this) {
    // No workers, nothing to distribute, or a re-entrant call from inside
    // one of this pool's own chunks: run inline. A worker must never block
    // on the gate — the dispatch it is part of is waiting on it.
    for (size_t i = 0; i < num_chunks; ++i) {
      fn(i);
    }
    return;
  }
  std::unique_lock<std::mutex> gate(gate_, std::try_to_lock);
  if (!gate.owns_lock()) {
    // Another thread's dispatch owns the workers; caller-runs keeps this
    // call lock-free and deadlock-free (shared-pool multiplexing).
    for (size_t i = 0; i < num_chunks; ++i) {
      fn(i);
    }
    return;
  }
  // The dispatching thread owns gate_ for the whole span below and runs
  // chunks itself, so a re-entrant ParallelChunks from one of its chunks
  // must take the inline path at the top — try_lock on a mutex this
  // thread already holds is undefined behavior. Mark the dispatcher as
  // part of the pool for the span, the way WorkerLoop does permanently.
  const ThreadPool* const prev_pool = tls_worker_pool;
  tls_worker_pool = this;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    total_chunks_ = num_chunks;
    next_chunk_.store(0, std::memory_order_relaxed);
    active_ = workers_.size();
    ++generation_;
  }
  work_cv_.notify_all();
  for (;;) {
    const size_t chunk = next_chunk_.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= num_chunks) {
      break;
    }
    fn(chunk);
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return active_ == 0; });
    job_ = nullptr;
  }
  tls_worker_pool = prev_pool;
}

void ThreadPool::WorkerLoop() {
  tls_worker_pool = this;
  uint64_t seen = 0;
  for (;;) {
    const std::function<void(size_t)>* job = nullptr;
    size_t total = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stopping_ || generation_ != seen; });
      if (stopping_) {
        return;
      }
      seen = generation_;
      job = job_;
      total = total_chunks_;
    }
    for (;;) {
      const size_t chunk = next_chunk_.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= total) {
        break;
      }
      (*job)(chunk);
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--active_ == 0) {
        done_cv_.notify_all();
      }
    }
  }
}

}  // namespace seer
