// CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant).
//
// Every section of the binary snapshot format and every WAL record carries
// a CRC so a torn or bit-rotted write is detected at load time instead of
// silently corrupting the learned database. Table-driven, no external
// dependency.
#ifndef SRC_UTIL_CRC32_H_
#define SRC_UTIL_CRC32_H_

#include <cstdint>
#include <string_view>

namespace seer {

// Extends a running CRC (start with crc = 0) over `data`.
uint32_t Crc32(uint32_t crc, std::string_view data);

inline uint32_t Crc32(std::string_view data) { return Crc32(0, data); }

}  // namespace seer

#endif  // SRC_UTIL_CRC32_H_
