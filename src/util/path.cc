#include "src/util/path.h"

namespace seer {

std::vector<std::string> SplitPath(std::string_view path) {
  std::vector<std::string> parts;
  size_t i = 0;
  while (i < path.size()) {
    while (i < path.size() && path[i] == '/') {
      ++i;
    }
    size_t start = i;
    while (i < path.size() && path[i] != '/') {
      ++i;
    }
    if (i > start) {
      parts.emplace_back(path.substr(start, i - start));
    }
  }
  return parts;
}

std::string NormalizePath(std::string_view path) {
  const bool absolute = !path.empty() && path.front() == '/';
  std::vector<std::string> stack;
  for (auto& part : SplitPath(path)) {
    if (part == ".") {
      continue;
    }
    if (part == "..") {
      if (!stack.empty() && stack.back() != "..") {
        stack.pop_back();
      } else if (!absolute) {
        stack.push_back("..");
      }
      // ".." at the root of an absolute path is dropped.
      continue;
    }
    stack.push_back(std::move(part));
  }
  std::string out;
  if (absolute) {
    out = "/";
  }
  for (size_t i = 0; i < stack.size(); ++i) {
    if (i > 0) {
      out += '/';
    }
    out += stack[i];
  }
  if (out.empty()) {
    out = absolute ? "/" : ".";
  }
  return out;
}

std::string JoinPath(std::string_view base, std::string_view rel) {
  if (!rel.empty() && rel.front() == '/') {
    return NormalizePath(rel);
  }
  std::string combined(base);
  if (!combined.empty() && combined.back() != '/') {
    combined += '/';
  }
  combined += rel;
  return NormalizePath(combined);
}

std::string AbsolutePath(std::string_view cwd, std::string_view path) {
  if (!path.empty() && path.front() == '/') {
    return NormalizePath(path);
  }
  return JoinPath(cwd, path);
}

std::string Dirname(std::string_view path) {
  const size_t pos = path.find_last_of('/');
  if (pos == std::string_view::npos) {
    return ".";
  }
  if (pos == 0) {
    return "/";
  }
  return std::string(path.substr(0, pos));
}

std::string Basename(std::string_view path) {
  const size_t pos = path.find_last_of('/');
  if (pos == std::string_view::npos) {
    return std::string(path);
  }
  return std::string(path.substr(pos + 1));
}

bool IsDotFile(std::string_view path) {
  const std::string base = Basename(path);
  return base.size() > 1 && base.front() == '.' && base != ".." && base != ".";
}

bool IsUnder(std::string_view path, std::string_view dir) {
  const std::string p = NormalizePath(path);
  std::string d = NormalizePath(dir);
  if (d == "/") {
    return !p.empty() && p.front() == '/';
  }
  if (p == d) {
    return true;
  }
  d += '/';
  return p.size() > d.size() && p.compare(0, d.size(), d) == 0;
}

int DirectoryDistance(std::string_view path_a, std::string_view path_b) {
  const auto a = SplitPath(Dirname(NormalizePath(path_a)));
  const auto b = SplitPath(Dirname(NormalizePath(path_b)));
  size_t common = 0;
  while (common < a.size() && common < b.size() && a[common] == b[common]) {
    ++common;
  }
  return static_cast<int>((a.size() - common) + (b.size() - common));
}

std::string Extension(std::string_view path) {
  const std::string base = Basename(path);
  const size_t pos = base.find_last_of('.');
  if (pos == std::string::npos || pos == 0 || pos + 1 == base.size()) {
    return "";
  }
  return base.substr(pos + 1);
}

}  // namespace seer
