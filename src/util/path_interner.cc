#include "src/util/path_interner.h"

#include <mutex>

namespace seer {

PathId PathInterner::Intern(std::string_view path) {
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    const auto it = by_path_.find(path);
    if (it != by_path_.end()) {
      return it->second;
    }
  }
  std::unique_lock<std::shared_mutex> lock(mutex_);
  const auto it = by_path_.find(path);  // re-check: lost the insert race?
  if (it != by_path_.end()) {
    return it->second;
  }
  const PathId id = static_cast<PathId>(storage_.size());
  storage_.emplace_back(path);
  by_path_.emplace(std::string_view(storage_.back()), id);
  return id;
}

PathId PathInterner::Find(std::string_view path) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  const auto it = by_path_.find(path);
  return it == by_path_.end() ? kInvalidPathId : it->second;
}

std::string_view PathInterner::PathOf(PathId id) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  if (id >= storage_.size()) {
    return {};
  }
  return storage_[id];
}

size_t PathInterner::size() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return storage_.size();
}

PathInterner& GlobalPaths() {
  static PathInterner* interner = new PathInterner();
  return *interner;
}

std::string PathString(PathId id) { return std::string(GlobalPaths().PathOf(id)); }

}  // namespace seer
