#include "src/util/stats.h"

#include <algorithm>

namespace seer {

namespace {

// z-value for a two-sided 99% confidence interval under the normal
// approximation.
constexpr double kZ99 = 2.5758293035489004;

}  // namespace

Summary Summarize(std::vector<double> samples) {
  Summary s;
  if (samples.empty()) {
    return s;
  }
  std::sort(samples.begin(), samples.end());
  s.count = samples.size();
  s.min = samples.front();
  s.max = samples.back();

  Welford w;
  for (double x : samples) {
    w.Add(x);
    s.total += x;
  }
  s.mean = w.Mean();
  s.stddev = w.Stddev();

  const size_t n = samples.size();
  if (n % 2 == 1) {
    s.median = samples[n / 2];
  } else {
    s.median = 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
  }

  if (n > 1) {
    s.ci99_half_width = kZ99 * s.stddev / std::sqrt(static_cast<double>(n));
  }
  return s;
}

double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) {
    return 0.0;
  }
  std::sort(samples.begin(), samples.end());
  if (p <= 0.0) {
    return samples.front();
  }
  if (p >= 100.0) {
    return samples.back();
  }
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples.size()) {
    return samples.back();
  }
  return samples[lo] * (1.0 - frac) + samples[lo + 1] * frac;
}

}  // namespace seer
