#include "src/observer/observer.h"

#include "src/util/path.h"

namespace seer {

namespace {

// Event views: one templated pipeline body consumes both the string-path
// TraceEvent and the pre-interned InternedEvent. The raw view interns
// lazily, so a path is interned only at the call sites that always
// interned it (the global id-assignment order is unchanged for string
// ingress), while the interned view resolves spellings back out of the
// global table only where a string is genuinely needed.
struct RawEventView {
  const TraceEvent& e;
  PathId path_id() const { return GlobalPaths().Intern(e.path); }
  std::string_view path_sv() const { return e.path; }
  std::string path_str() const { return e.path; }
  PathId path2_id() const { return GlobalPaths().Intern(e.path2); }
};

struct InternedEventView {
  const InternedEvent& e;
  PathId path_id() const { return e.path; }
  std::string_view path_sv() const { return GlobalPaths().PathOf(e.path); }
  std::string path_str() const { return std::string(GlobalPaths().PathOf(e.path)); }
  PathId path2_id() const { return e.path2; }
};

}  // namespace

Observer::Observer(ObserverConfig config, const SimFilesystem* fs)
    : config_(std::move(config)), fs_(fs) {}

Observer::ProcState& Observer::Proc(Pid pid) { return procs_[pid]; }

bool Observer::AlwaysHoards(std::string_view path) const {
  const PathId id = GlobalPaths().Find(path);
  return id != kInvalidPathId && always_hoard_.count(id) != 0;
}

bool Observer::IsMeaninglessProgram(const std::string& program) const {
  if (config_.meaningless_programs.count(program) != 0) {
    return true;
  }
  const auto it = program_history_.find(program);
  if (it == program_history_.end()) {
    return false;
  }
  const ProgramHistory& h = it->second;
  return h.potential >= config_.meaningless_min_potential &&
         static_cast<double>(h.actual) >=
             config_.meaningless_ratio * static_cast<double>(h.potential);
}

bool Observer::ProcessMeaningless(const ProcState& proc) const {
  // The control list applies under every mode (approach 1, retained for a
  // few stragglers even in production).
  if (proc.control_meaningless || config_.meaningless_programs.count(proc.program) != 0) {
    return true;
  }
  switch (config_.meaningless_mode) {
    case MeaninglessMode::kControlListOnly: {
      return false;
    }
    case MeaninglessMode::kAnyDirectoryRead: {
      // Approach 2: a process that has read a directory is meaningless for
      // the rest of its lifetime. Simple — and wrong: editors read
      // directories to implement filename completion.
      return proc.has_read_directory;
    }
    case MeaninglessMode::kWhileDirectoryOpen: {
      // Approach 3: meaningless only while a directory is open. Also
      // wrong: find does not keep directories open while it works.
      return proc.open_directories > 0;
    }
    case MeaninglessMode::kRatioHeuristic: {
      // Approach 4 (production): compare what the process could know about
      // (from reading directories) with what it actually touches, based on
      // the program's history plus this execution's live counters.
      uint64_t potential = proc.potential;
      uint64_t actual = proc.actual;
      const auto it = program_history_.find(proc.program);
      if (it != program_history_.end()) {
        potential += it->second.potential;
        actual += it->second.actual;
      }
      return potential >= config_.meaningless_min_potential &&
             static_cast<double>(actual) >=
                 config_.meaningless_ratio * static_cast<double>(potential);
    }
  }
  return false;
}

void Observer::PretrainProgramHistory(const std::string& program, uint64_t potential,
                                       uint64_t actual) {
  ProgramHistory& h = program_history_[program];
  h.potential += potential;
  h.actual += actual;
  ++h.executions;
}

Observer::PathClass Observer::Classify(PathId id, std::string_view path) {
  if (id >= prefix_class_.size()) {
    prefix_class_.resize(id + 1, PathClass::kUnclassified);
  }
  PathClass prefix = prefix_class_[id];
  if (prefix == PathClass::kUnclassified) {
    // Config-derived classification is a pure function of the pathname;
    // compute it once per distinct path.
    prefix = PathClass::kNormal;
    for (const auto& dir : config_.transient_dirs) {
      if (IsUnder(path, dir)) {
        prefix = PathClass::kTransient;
        break;
      }
    }
    if (prefix == PathClass::kNormal) {
      for (const auto& pre : config_.critical_prefixes) {
        if (IsUnder(path, pre)) {
          prefix = PathClass::kCritical;
          break;
        }
      }
    }
    if (prefix == PathClass::kNormal && config_.exclude_dot_files && IsDotFile(path)) {
      prefix = PathClass::kCritical;
    }
    prefix_class_[id] = prefix;
  }
  if (prefix == PathClass::kTransient) {
    return PathClass::kTransient;
  }
  if (prefix == PathClass::kCritical) {
    always_hoard_.insert(id);
    return PathClass::kCritical;
  }
  if (fs_ != nullptr) {
    const auto info = fs_->Stat(path);
    if (info.has_value() && info->kind != NodeKind::kRegular &&
        info->kind != NodeKind::kDirectory) {
      // Devices, pseudo-files and symlinks: essential, nearly free to hoard,
      // and noisy as distance inputs (Section 4.6).
      always_hoard_.insert(id);
      return PathClass::kNonFile;
    }
  }
  if (frequent_.count(id) != 0) {
    return PathClass::kFrequent;
  }
  return PathClass::kNormal;
}

void Observer::CountAccess(ProcState& proc, PathId path) {
  // heuristic-#4 "actual" counter: distinct files this process touches.
  if (proc.touched.insert(path).second) {
    ++proc.actual;
  }

  // Frequent-file accounting (Section 4.2).
  ++total_accesses_;
  const uint64_t count = ++access_counts_[path];
  if (total_accesses_ >= config_.frequent_min_total && frequent_.count(path) == 0 &&
      static_cast<double>(count) >
          config_.frequent_threshold * static_cast<double>(total_accesses_)) {
    frequent_.insert(path);
    always_hoard_.insert(path);
    if (sink_ != nullptr) {
      sink_->OnFileExcluded(path);
    }
  }
}

void Observer::FlushPendingStat(ProcState& proc) {
  if (proc.pending_stat.has_value()) {
    const FileReference ref = *proc.pending_stat;
    proc.pending_stat.reset();
    if (sink_ != nullptr) {
      sink_->OnReference(ref);
    }
    ++references_emitted_;
  }
}

void Observer::EmitReference(ProcState& proc, Pid pid, RefKind kind, PathId path, Time time,
                             bool write, bool bypass_meaningless) {
  if (proc.in_getcwd) {
    ++references_filtered_;
    return;
  }
  if (!bypass_meaningless && ProcessMeaningless(proc)) {
    ++references_filtered_;
    return;
  }
  const PathClass cls = Classify(path, GlobalPaths().PathOf(path));
  if (cls != PathClass::kNormal) {
    ++references_filtered_;
    return;
  }
  if (sink_ != nullptr) {
    FileReference ref;
    ref.pid = pid;
    ref.kind = kind;
    ref.path = path;
    ref.time = time;
    ref.write = write;
    sink_->OnReference(ref);
  }
  ++references_emitted_;
}

void Observer::HandleOpen(Pid pid, Time time, bool write, ProcState& proc, PathId path) {
  // Opening a regular file ends any getcwd climb.
  proc.in_getcwd = false;
  proc.climb_streak = 0;

  // A stat immediately followed by an open of the same file is a single
  // access from the user's point of view (Section 4.8).
  if (proc.pending_stat.has_value() && proc.pending_stat->path == path) {
    proc.pending_stat.reset();
  } else {
    FlushPendingStat(proc);
  }

  CountAccess(proc, path);
  EmitReference(proc, pid, RefKind::kBegin, path, time, write);
}

void Observer::HandleDirOps(Op op, std::string_view path, int32_t detail, ProcState& proc) {
  switch (op) {
    case Op::kOpenDir: {
      ++proc.open_directories;
      // getcwd climbs: each opendir targets the parent of the previous one.
      if (!proc.last_opendir.empty() && path == Dirname(proc.last_opendir)) {
        ++proc.climb_streak;
        if (proc.climb_streak >= config_.getcwd_climb_threshold && !proc.in_getcwd) {
          proc.in_getcwd = true;
          // Retroactively forgive the directory reads that were actually
          // part of the getcwd walk.
          if (proc.potential >= proc.last_readdir_entries) {
            proc.potential -= proc.last_readdir_entries;
          } else {
            proc.potential = 0;
          }
        }
      } else {
        proc.climb_streak = 0;
        proc.in_getcwd = false;
      }
      proc.last_opendir.assign(path);
      break;
    }
    case Op::kReadDir: {
      if (!proc.in_getcwd) {
        const uint64_t entries = detail > 0 ? static_cast<uint64_t>(detail) : 0;
        proc.potential += entries;
        proc.last_readdir_entries = entries;
        proc.has_read_directory = true;
      }
      break;
    }
    case Op::kCloseDir: {
      if (proc.open_directories > 0) {
        --proc.open_directories;
      }
      break;
    }
    default:
      break;
  }
}

template <typename View>
void Observer::Process(const View& v) {
  const auto& e = v.e;
  ++events_seen_;
  ProcState& proc = Proc(e.pid);

  // Failed accesses: kNoEnt is routine and uninformative (Section 4.4);
  // kNotLocal is the automatic miss detector's signal.
  if (!e.ok()) {
    if (e.status == OpStatus::kNotLocal && miss_listener_ != nullptr &&
        (e.op == Op::kOpen || e.op == Op::kExec)) {
      miss_listener_->OnNotLocalAccess(v.path_id(), e.pid, e.time);
    }
    return;
  }

  switch (e.op) {
    case Op::kFork: {
      FlushPendingStat(proc);
      const Pid child = e.detail;
      ProcState& child_state = Proc(child);
      child_state.program = proc.program;
      child_state.program_id = proc.program_id;
      child_state.control_meaningless = proc.control_meaningless;
      if (sink_ != nullptr) {
        sink_->OnProcessFork(e.pid, child);
      }
      break;
    }
    case Op::kExec: {
      FlushPendingStat(proc);
      // End the previous image's lifetime reference.
      if (proc.program_id != kInvalidPathId) {
        EmitReference(proc, e.pid, RefKind::kEnd, proc.program_id, e.time, false,
                      /*bypass_meaningless=*/true);
      }
      // Fold the old image's counters into its history before switching.
      if (!proc.program.empty() && (proc.potential > 0 || proc.actual > 0)) {
        ProgramHistory& h = program_history_[proc.program];
        h.potential += proc.potential;
        h.actual += proc.actual;
        ++h.executions;
      }
      const PathId image = v.path_id();
      proc.program = v.path_str();
      proc.program_id = image;
      proc.control_meaningless = config_.meaningless_programs.count(proc.program) != 0;
      proc.potential = 0;
      proc.actual = 0;
      proc.touched.clear();
      proc.in_getcwd = false;
      proc.climb_streak = 0;
      proc.has_read_directory = false;
      proc.open_directories = 0;
      // The execution itself is a begin-reference to the program image
      // (Section 4.8: "executions ... treated as opens"). This holds even
      // for a meaningless program: its *scanning* carries no information,
      // but the binary itself must be hoarded for the user to run it.
      CountAccess(proc, image);
      EmitReference(proc, e.pid, RefKind::kBegin, image, e.time, false,
                    /*bypass_meaningless=*/true);
      break;
    }
    case Op::kExit: {
      FlushPendingStat(proc);
      if (proc.program_id != kInvalidPathId) {
        EmitReference(proc, e.pid, RefKind::kEnd, proc.program_id, e.time, false,
                      /*bypass_meaningless=*/true);
        ProgramHistory& h = program_history_[proc.program];
        h.potential += proc.potential;
        h.actual += proc.actual;
        ++h.executions;
      }
      if (sink_ != nullptr) {
        sink_->OnProcessExit(e.pid);
      }
      procs_.erase(e.pid);
      break;
    }
    case Op::kOpen:
    case Op::kCreate: {
      HandleOpen(e.pid, e.time, e.write, proc, v.path_id());
      break;
    }
    case Op::kClose: {
      EmitReference(proc, e.pid, RefKind::kEnd, v.path_id(), e.time, e.write);
      break;
    }
    case Op::kStat: {
      proc.in_getcwd = false;
      proc.climb_streak = 0;
      const PathId path = v.path_id();
      CountAccess(proc, path);
      if (ProcessMeaningless(proc) || Classify(path, v.path_sv()) != PathClass::kNormal) {
        ++references_filtered_;
        break;
      }
      FileReference ref;
      ref.pid = e.pid;
      ref.kind = RefKind::kPoint;
      ref.path = path;
      ref.time = e.time;
      ref.write = false;
      if (config_.collapse_stat_open) {
        FlushPendingStat(proc);
        proc.pending_stat = ref;
      } else if (sink_ != nullptr) {
        sink_->OnReference(ref);
        ++references_emitted_;
      }
      break;
    }
    case Op::kChmod: {
      FlushPendingStat(proc);
      const PathId path = v.path_id();
      CountAccess(proc, path);
      EmitReference(proc, e.pid, RefKind::kPoint, path, e.time, true);
      break;
    }
    case Op::kUnlink: {
      FlushPendingStat(proc);
      const PathId path = v.path_id();
      CountAccess(proc, path);
      EmitReference(proc, e.pid, RefKind::kPoint, path, e.time, true);
      if (sink_ != nullptr) {
        sink_->OnFileDeleted(path, e.time);
      }
      always_hoard_.erase(path);
      break;
    }
    case Op::kRename: {
      FlushPendingStat(proc);
      const PathId from = v.path_id();
      const PathId to = v.path2_id();
      CountAccess(proc, from);
      EmitReference(proc, e.pid, RefKind::kPoint, from, e.time, true);
      if (sink_ != nullptr) {
        sink_->OnFileRenamed(from, to, e.time);
      }
      if (always_hoard_.erase(from) != 0) {
        always_hoard_.insert(to);
      }
      break;
    }
    case Op::kLink: {
      FlushPendingStat(proc);
      const PathId path = v.path_id();
      CountAccess(proc, path);
      EmitReference(proc, e.pid, RefKind::kPoint, path, e.time, true);
      break;
    }
    case Op::kMkdir:
    case Op::kRmdir:
    case Op::kChdir: {
      // Directory namespace operations carry no per-file semantic signal;
      // directory hoarding is the replication substrate's business
      // (Section 4.6).
      break;
    }
    case Op::kOpenDir:
    case Op::kReadDir:
    case Op::kCloseDir: {
      HandleDirOps(e.op, v.path_sv(), e.detail, proc);
      break;
    }
  }
}

void Observer::OnEvent(const TraceEvent& e) { Process(RawEventView{e}); }

void Observer::OnInternedEvent(const InternedEvent& e) { Process(InternedEventView{e}); }

}  // namespace seer
