// Composable ReferenceSink decorators with a lightweight metrics layer.
//
// The observer-to-correlator data plane is a chain of ReferenceSinks; this
// header provides the decorators to compose and instrument it without the
// core stages knowing they are being watched:
//
//   * InstrumentedSink — per-callback-kind counters plus a log2-bucketed
//     nanosecond latency histogram of the downstream call (the cost added
//     to the traced syscall, Section 5.3);
//   * FilterSink      — drops OnReference messages failing a predicate
//     (namespace and process-lifecycle callbacks always pass, or the
//     correlator's lifetimes would unbalance);
//   * TeeSink         — fans one stream out to several consumers (e.g. a
//     live correlator plus a trace archiver).
//
// SinkChain owns a stack of decorators terminating at a caller-provided
// sink and renders their metrics for seerctl's `pipeline` command.
#ifndef SRC_OBSERVER_SINK_CHAIN_H_
#define SRC_OBSERVER_SINK_CHAIN_H_

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/observer/reference.h"

namespace seer {

// Per-stage message counts, one counter per ReferenceSink callback.
struct SinkCounters {
  uint64_t references = 0;
  uint64_t forks = 0;
  uint64_t exits = 0;
  uint64_t deletes = 0;
  uint64_t renames = 0;
  uint64_t exclusions = 0;

  uint64_t total() const {
    return references + forks + exits + deletes + renames + exclusions;
  }
};

// Log2-bucketed nanosecond histogram: bucket b holds samples in
// [2^b, 2^(b+1)) ns. Cheap enough for the per-reference hot path.
class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = 40;

  void Record(uint64_t ns);

  uint64_t count() const { return count_; }
  uint64_t max_ns() const { return max_ns_; }
  double mean_ns() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_ns_) / static_cast<double>(count_);
  }
  // Upper bound of the bucket containing the p-quantile (p in [0,1]).
  uint64_t PercentileNs(double p) const;
  const std::array<uint64_t, kBuckets>& buckets() const { return buckets_; }

 private:
  std::array<uint64_t, kBuckets> buckets_{};
  uint64_t count_ = 0;
  uint64_t sum_ns_ = 0;
  uint64_t max_ns_ = 0;
};

// Counts every message and (optionally) times the downstream call.
class InstrumentedSink : public ReferenceSink {
 public:
  InstrumentedSink(std::string label, ReferenceSink* next, bool measure_latency = true)
      : label_(std::move(label)), next_(next), measure_latency_(measure_latency) {}

  void OnReference(const FileReference& ref) override;
  void OnProcessFork(Pid parent, Pid child) override;
  void OnProcessExit(Pid pid) override;
  void OnFileDeleted(PathId path, Time time) override;
  void OnFileRenamed(PathId from, PathId to, Time time) override;
  void OnFileExcluded(PathId path) override;

  const std::string& label() const { return label_; }
  const SinkCounters& counters() const { return counters_; }
  const LatencyHistogram& latency() const { return latency_; }

 private:
  std::string label_;
  ReferenceSink* next_;
  bool measure_latency_;
  SinkCounters counters_;
  LatencyHistogram latency_;
};

// Forwards OnReference only when `keep` approves. Process lifecycle and
// namespace messages are structural and always forwarded.
class FilterSink : public ReferenceSink {
 public:
  using Predicate = std::function<bool(const FileReference& ref)>;

  FilterSink(Predicate keep, ReferenceSink* next) : keep_(std::move(keep)), next_(next) {}

  void OnReference(const FileReference& ref) override;
  void OnProcessFork(Pid parent, Pid child) override;
  void OnProcessExit(Pid pid) override;
  void OnFileDeleted(PathId path, Time time) override;
  void OnFileRenamed(PathId from, PathId to, Time time) override;
  void OnFileExcluded(PathId path) override;

  uint64_t dropped() const { return dropped_; }
  uint64_t passed() const { return passed_; }

 private:
  Predicate keep_;
  ReferenceSink* next_;
  uint64_t dropped_ = 0;
  uint64_t passed_ = 0;
};

// Tags a reference stream with one TenantId and routes every callback
// through a resolver to that tenant's current consumer. The resolver runs
// per callback, not once: the multi-tenant router may evict a cold
// tenant's correlator and transparently restore it on the next event, so
// the downstream sink pointer is not stable. Messages for which the
// resolver returns nullptr (unknown or failed tenant) are counted and
// dropped. A TenantScopedSink is the terminal of a tenant's SinkChain:
//
//   TenantScopedSink scoped(tenant_id, route);
//   SinkChain chain(&scoped);
//   chain.Instrument("tenant-7");
//   observer.set_sink(chain.head());
class TenantScopedSink : public ReferenceSink {
 public:
  // Resolves a tenant tag to its current consumer (or nullptr to drop).
  using RouteFn = std::function<ReferenceSink*(TenantId tenant)>;

  TenantScopedSink(TenantId tenant, RouteFn route)
      : tenant_(tenant), route_(std::move(route)) {}

  void OnReference(const FileReference& ref) override;
  void OnProcessFork(Pid parent, Pid child) override;
  void OnProcessExit(Pid pid) override;
  void OnFileDeleted(PathId path, Time time) override;
  void OnFileRenamed(PathId from, PathId to, Time time) override;
  void OnFileExcluded(PathId path) override;

  TenantId tenant() const { return tenant_; }
  uint64_t routed() const { return routed_; }
  uint64_t unrouted() const { return unrouted_; }

 private:
  ReferenceSink* Resolve();

  TenantId tenant_;
  RouteFn route_;
  uint64_t routed_ = 0;
  uint64_t unrouted_ = 0;
};

// Replicates every message to each output, in order.
class TeeSink : public ReferenceSink {
 public:
  explicit TeeSink(std::vector<ReferenceSink*> outputs) : outputs_(std::move(outputs)) {}

  void OnReference(const FileReference& ref) override;
  void OnProcessFork(Pid parent, Pid child) override;
  void OnProcessExit(Pid pid) override;
  void OnFileDeleted(PathId path, Time time) override;
  void OnFileRenamed(PathId from, PathId to, Time time) override;
  void OnFileExcluded(PathId path) override;

 private:
  std::vector<ReferenceSink*> outputs_;
};

// Owning builder: stages added later sit closer to the producer, so
//
//   SinkChain chain(&correlator);
//   chain.Filter(pred);               // runs second
//   chain.Instrument("observer");     // runs first
//   observer.set_sink(chain.head());
//
// yields observer -> instrument -> filter -> correlator.
class SinkChain {
 public:
  explicit SinkChain(ReferenceSink* terminal) : head_(terminal) {}
  SinkChain(const SinkChain&) = delete;
  SinkChain& operator=(const SinkChain&) = delete;

  SinkChain& Instrument(std::string label, bool measure_latency = true);
  SinkChain& Filter(FilterSink::Predicate keep);
  SinkChain& TeeInto(ReferenceSink* extra);

  ReferenceSink* head() const { return head_; }

  // Instrumented stages in producer-to-consumer order.
  std::vector<const InstrumentedSink*> instrumented() const;
  uint64_t total_dropped() const;

  // Human-readable per-stage metrics table (seerctl pipeline).
  std::string FormatMetrics() const;

 private:
  ReferenceSink* head_;
  // Producer-to-consumer order is the reverse of insertion order.
  std::vector<std::unique_ptr<ReferenceSink>> stages_;
  std::vector<const InstrumentedSink*> instrumented_;
  std::vector<const FilterSink*> filters_;
};

}  // namespace seer

#endif  // SRC_OBSERVER_SINK_CHAIN_H_
