// System control file parsing.
//
// The paper's SEER is configured by small administrator-maintained control
// files: hand-flagged meaningless programs (Section 4.1), transient
// directories (Section 4.5), critical files and directories left outside
// SEER's control (Section 4.3), and ignored non-file objects (Section 4.6).
// This module parses a textual control file into an ObserverConfig:
//
//   # comment
//   meaningless /usr/bin/xargs
//   transient /tmp
//   critical /etc
//   dot-files on
//   frequent-threshold 0.01
//   frequent-min-total 1000
//   meaningless-mode ratio          # control-list | any-dir-read |
//                                   # while-dir-open | ratio
//   meaningless-ratio 0.3
//   meaningless-min-potential 20
//   getcwd-threshold 2
//   collapse-stat-open on
//
// Directives replace scalar settings and append to list settings; the
// `clear` directive empties all list settings first (useful when the file
// should fully define the configuration rather than extend the defaults).
#ifndef SRC_OBSERVER_CONTROL_FILE_H_
#define SRC_OBSERVER_CONTROL_FILE_H_

#include <string>
#include <string_view>

#include "src/observer/observer_config.h"
#include "src/util/status.h"

namespace seer {

// Parses `text`, applying directives on top of `base`. Returns
// kInvalidArgument with a line-numbered message on bad input.
StatusOr<ObserverConfig> ParseObserverControlFile(std::string_view text,
                                                  const ObserverConfig& base = {});

// Renders a config back into control-file text (round-trips through the
// parser).
std::string FormatObserverControlFile(const ObserverConfig& config);

}  // namespace seer

#endif  // SRC_OBSERVER_CONTROL_FILE_H_
