// The SEER observer.
//
// Watches the traced syscall stream, classifies each access, converts
// pathnames to absolute form (done upstream by the tracer in this
// implementation), filters out activity that carries no semantic
// information, and feeds clean per-process file references to the
// correlator (Section 2).
//
// The observer is the interning boundary of the data plane: every pathname
// is mapped to a dense PathId (GlobalPaths()) exactly once, on event
// ingress. All internal bookkeeping — per-process touched sets, the
// frequent-file accounting, the always-hoard set, the emitted
// FileReferences — is keyed on PathId, so the per-syscall cost is a few
// integer-set operations and the stable prefix classification of a path is
// computed once per distinct path, then cached by id.
//
// Implemented filters, each mirroring a subsection of "Real-World
// Intrusions" (Section 4):
//   4.1  meaningless processes — static control list, the
//        potential-vs-actual directory-read heuristic with per-program
//        history, and getcwd pattern detection;
//   4.2  frequently-referenced files (shared libraries) — the 1% rule;
//   4.3  critical files — control-file prefixes and dot-files, excluded
//        from SEER's control and hoarded unconditionally;
//   4.4  hoard-miss observation — kNotLocal accesses are surfaced to a
//        MissListener rather than swallowed;
//   4.5  temporary directories — ignored outright;
//   4.6  non-files — devices/pseudo-objects always hoarded, never fed to
//        the correlator; directory hoarding left to the replication layer;
//   4.8  non-open references — point references, deletion delay (delegated
//        to the correlator), stat-then-open collapse.
#ifndef SRC_OBSERVER_OBSERVER_H_
#define SRC_OBSERVER_OBSERVER_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/observer/observer_config.h"
#include "src/observer/reference.h"
#include "src/process/syscall_tracer.h"
#include "src/trace/event.h"
#include "src/util/path_interner.h"
#include "src/vfs/sim_filesystem.h"

namespace seer {

// Receives accesses that failed with kNotLocal — the automatic hoard-miss
// detector's raw input (Section 4.4).
class MissListener {
 public:
  virtual ~MissListener() = default;
  virtual void OnNotLocalAccess(PathId path, Pid pid, Time time) = 0;
};

class Observer : public TraceSink {
 public:
  // `fs` is consulted for object kinds (regular vs device vs symlink); it
  // may be null, in which case every path is assumed to be a regular file.
  Observer(ObserverConfig config, const SimFilesystem* fs);

  void set_sink(ReferenceSink* sink) { sink_ = sink; }
  void set_miss_listener(MissListener* listener) { miss_listener_ = listener; }

  // TraceSink:
  void OnEvent(const TraceEvent& event) override;

  // Zero-copy ingress: the same pipeline fed by an event whose paths are
  // already interned (the wire decoder's arena output). Behaviour is
  // identical to OnEvent on the equivalent TraceEvent — both funnel into
  // one templated body — except that no path string is re-interned.
  void OnInternedEvent(const InternedEvent& event);

  // Files that must be in every hoard regardless of distance calculations:
  // critical files, dot-files, non-file objects, and frequent files.
  const std::set<PathId>& always_hoard() const { return always_hoard_; }

  // Diagnostic/egress convenience for the PathId set above.
  bool AlwaysHoards(std::string_view path) const;

  // Current frequently-referenced set (subset of always_hoard()).
  const std::set<PathId>& frequent_files() const { return frequent_; }

  // True when the given program image is currently considered meaningless,
  // either via the control file or via learned history.
  bool IsMeaninglessProgram(const std::string& program) const;

  // Seeds the per-program potential/actual history (Section 4.1) as if the
  // program had been observed before tracing started. Simulations use this
  // to model a machine whose observer has already learned its find-style
  // scanners, as any real deployment quickly would.
  void PretrainProgramHistory(const std::string& program, uint64_t potential, uint64_t actual);

  // Introspection counters.
  uint64_t events_seen() const { return events_seen_; }
  uint64_t references_emitted() const { return references_emitted_; }
  uint64_t references_filtered() const { return references_filtered_; }

 private:
  struct ProcState {
    std::string program;
    PathId program_id = kInvalidPathId;
    bool control_meaningless = false;  // program is on the control list
    // Current-execution counters for heuristic #4.
    uint64_t potential = 0;
    uint64_t actual = 0;
    std::set<PathId> touched;
    // Approach-2/3 state (Section 4.1).
    bool has_read_directory = false;
    int open_directories = 0;
    // getcwd detection.
    std::string last_opendir;
    int climb_streak = 0;
    bool in_getcwd = false;
    uint64_t last_readdir_entries = 0;
    // stat-open collapse.
    std::optional<FileReference> pending_stat;
  };

  struct ProgramHistory {
    uint64_t potential = 0;
    uint64_t actual = 0;
    uint64_t executions = 0;
  };

  enum class PathClass : uint8_t {
    kNormal,     // feed to the correlator
    kCritical,   // always hoard, never feed
    kNonFile,    // always hoard, never feed
    kTransient,  // ignore outright
    kFrequent,   // always hoard, never feed
    kUnclassified,  // cache sentinel: prefix class not yet computed
  };

  ProcState& Proc(Pid pid);
  PathClass Classify(PathId id, std::string_view path);
  bool ProcessMeaningless(const ProcState& proc) const;
  void CountAccess(ProcState& proc, PathId path);
  void FlushPendingStat(ProcState& proc);
  void EmitReference(ProcState& proc, Pid pid, RefKind kind, PathId path, Time time, bool write,
                     bool bypass_meaningless = false);
  void HandleOpen(Pid pid, Time time, bool write, ProcState& proc, PathId path);
  void HandleDirOps(Op op, std::string_view path, int32_t detail, ProcState& proc);

  // The shared event-processing body. `View` adapts TraceEvent (paths as
  // strings, interned lazily at the historical call sites) or
  // InternedEvent (paths as ready PathIds) to one interface; defined in
  // observer.cc, instantiated only there.
  template <typename View>
  void Process(const View& v);

  ObserverConfig config_;
  const SimFilesystem* fs_;
  ReferenceSink* sink_ = nullptr;
  MissListener* miss_listener_ = nullptr;

  std::map<Pid, ProcState> procs_;
  std::map<std::string, ProgramHistory> program_history_;

  // Stable (config-derived) classification of each interned path: computed
  // from the pathname once, then an O(1) array read. Dynamic facts —
  // object kind from the filesystem, frequent-file status — are layered on
  // top per access in Classify().
  std::vector<PathClass> prefix_class_;

  // Frequent-file accounting (Section 4.2).
  std::map<PathId, uint64_t> access_counts_;
  uint64_t total_accesses_ = 0;
  std::set<PathId> frequent_;

  std::set<PathId> always_hoard_;

  uint64_t events_seen_ = 0;
  uint64_t references_emitted_ = 0;
  uint64_t references_filtered_ = 0;
};

}  // namespace seer

#endif  // SRC_OBSERVER_OBSERVER_H_
