// Observer configuration — the "system control file".
//
// The paper's SEER reads a small administrator-maintained control file
// listing hand-flagged meaningless programs, transient directories,
// critical files/directories left outside SEER's control, and ignored
// non-file objects (Sections 4.1, 4.3, 4.5, 4.6). This struct is that file.
#ifndef SRC_OBSERVER_OBSERVER_CONFIG_H_
#define SRC_OBSERVER_OBSERVER_CONFIG_H_

#include <set>
#include <string>
#include <vector>

namespace seer {

// The four meaningless-process detection approaches the paper experimented
// with (Section 4.1). The first three are retained so their failure modes
// can be demonstrated; production SEER uses kRatioHeuristic plus the
// control list.
enum class MeaninglessMode : uint8_t {
  kControlListOnly,    // approach 1: only hand-listed programs
  kAnyDirectoryRead,   // approach 2: reading a directory damns the process
                       // (fails: editors read directories for completion)
  kWhileDirectoryOpen, // approach 3: meaningless only while a directory is
                       // open (fails: find does not keep directories open)
  kRatioHeuristic,     // approach 4: potential-vs-actual with history (used)
};

struct ObserverConfig {
  // Programs whose accesses are ignored outright (Section 4.1 approach #1,
  // retained for a few stragglers: xargs, rdist, the replication substrate,
  // and the external investigators).
  std::set<std::string> meaningless_programs = {"/usr/bin/xargs", "/usr/bin/rdist"};

  // Directories whose files are transient and completely ignored
  // (Section 4.5).
  std::vector<std::string> transient_dirs = {"/tmp", "/var/tmp"};

  // Critical prefixes left outside SEER's control: always hoarded, never
  // fed to the correlator (Section 4.3).
  std::vector<std::string> critical_prefixes = {"/etc", "/sbin", "/boot"};

  // Dot-files (names beginning with '.') are treated as critical
  // (Section 4.3). Disable for ablation.
  bool exclude_dot_files = true;

  // Frequently-referenced-file heuristic (Section 4.2): a file accounting
  // for more than `frequent_threshold` of all accesses (after
  // `frequent_min_total` accesses have been seen) is dropped from distance
  // calculations and hoarded unconditionally. The paper used 1% against
  // multi-month traces over ~20,000 files; our synthetic namespaces are two
  // orders of magnitude smaller, which compresses relative access
  // frequencies, so the calibrated default is lower. bench/ablation_params
  // sweeps this threshold.
  double frequent_threshold = 0.007;
  uint64_t frequent_min_total = 1000;

  // Which Section 4.1 approach to use. kRatioHeuristic is the production
  // setting; the others exist for the ablation bench and tests.
  MeaninglessMode meaningless_mode = MeaninglessMode::kRatioHeuristic;

  // Meaningless-process heuristic #4 (Section 4.1): a program whose
  // history shows it touching at least `meaningless_ratio` of the files it
  // learns about from reading directories (with at least
  // `meaningless_min_potential` files learned) is marked meaningless.
  double meaningless_ratio = 0.3;
  uint64_t meaningless_min_potential = 20;

  // getcwd detection (Section 4.1): after this many consecutive
  // parent-directory climbs the process is considered to be inside getcwd
  // and its references are ignored until it does something else.
  int getcwd_climb_threshold = 2;

  // Discard a stat that is immediately followed by an open of the same file
  // by the same process (Section 4.8).
  bool collapse_stat_open = true;
};

}  // namespace seer

#endif  // SRC_OBSERVER_OBSERVER_CONFIG_H_
