// File references — the observer's output vocabulary.
//
// The observer reduces raw syscall events to a clean stream of per-process
// *file references* (Section 3.1): an open begins a reference lifetime, a
// close ends it, and non-open operations (stat, rename, unlink, ...) are
// point references equivalent to an open immediately followed by a close
// (Section 4.8). Process executions/exits are begin/end references to the
// program image. The correlator consumes this stream.
//
// Identity, not text, crosses this boundary: pathnames are interned into
// dense PathIds at the observer ingress (src/util/path_interner.h), so a
// FileReference is a small POD and every downstream table keys on the id.
// No std::string crosses ReferenceSink on the per-reference hot path.
#ifndef SRC_OBSERVER_REFERENCE_H_
#define SRC_OBSERVER_REFERENCE_H_

#include "src/trace/event.h"
#include "src/util/path_interner.h"

namespace seer {

// Tenant tag of a reference stream in the multi-tenant server plane. The
// per-event vocabulary below stays tenant-free (a FileReference is the same
// POD the single-instance stack has always consumed); tenancy is carried by
// the *channel*: each tenant's front end is a TenantScopedSink (sink_chain.h)
// stamped with one TenantId, and the router demultiplexes whole callbacks to
// that tenant's correlator. One laptop == one tenant is the degenerate case.
using TenantId = uint32_t;
constexpr TenantId kInvalidTenantId = 0xffffffffu;

enum class RefKind : uint8_t {
  kBegin,  // open (or exec): the reference lifetime starts
  kEnd,    // close (or exit): the lifetime ends
  kPoint,  // open immediately followed by close
};

struct FileReference {
  Pid pid = 0;
  RefKind kind = RefKind::kPoint;
  PathId path = kInvalidPathId;  // interned absolute, normalised path
  Time time = 0;
  bool write = false;
};

// Consumer interface implemented by the correlator.
class ReferenceSink {
 public:
  virtual ~ReferenceSink() = default;

  virtual void OnReference(const FileReference& ref) = 0;

  // Process lifecycle, needed for per-process reference streams: histories
  // are inherited at fork and merged back at exit (Section 4.7).
  virtual void OnProcessFork(Pid parent, Pid child) = 0;
  virtual void OnProcessExit(Pid pid) = 0;

  // Namespace changes the correlator must mirror. Deletion is soft: the
  // correlator marks the file and purges it only after a delay measured in
  // total deletions (Section 4.8).
  virtual void OnFileDeleted(PathId path, Time time) = 0;

  // Rename carries both interned names; downstream the new id is re-bound
  // to the file's existing identity so relation data survives
  // (Section 4.8).
  virtual void OnFileRenamed(PathId from, PathId to, Time time) = 0;

  // The file has been reclassified (e.g. crossed the frequently-referenced
  // threshold, Section 4.2) and must be dropped from distance and
  // relationship calculations.
  virtual void OnFileExcluded(PathId path) = 0;
};

}  // namespace seer

#endif  // SRC_OBSERVER_REFERENCE_H_
