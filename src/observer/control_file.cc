#include "src/observer/control_file.h"

#include <charconv>
#include <sstream>
#include <vector>

namespace seer {

namespace {

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) {
    ++b;
  }
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r')) {
    --e;
  }
  return s.substr(b, e - b);
}

// Splits "key value" on the first run of whitespace.
std::pair<std::string_view, std::string_view> SplitDirective(std::string_view line) {
  const size_t pos = line.find_first_of(" \t");
  if (pos == std::string_view::npos) {
    return {line, ""};
  }
  return {line.substr(0, pos), Trim(line.substr(pos + 1))};
}

bool ParseBool(std::string_view value, bool* out) {
  if (value == "on" || value == "true" || value == "1") {
    *out = true;
    return true;
  }
  if (value == "off" || value == "false" || value == "0") {
    *out = false;
    return true;
  }
  return false;
}

bool ParseDouble(std::string_view value, double* out) {
  // std::from_chars for double is available in libstdc++ 11+.
  const auto [ptr, ec] = std::from_chars(value.data(), value.data() + value.size(), *out);
  return ec == std::errc() && ptr == value.data() + value.size();
}

bool ParseU64(std::string_view value, uint64_t* out) {
  const auto [ptr, ec] = std::from_chars(value.data(), value.data() + value.size(), *out);
  return ec == std::errc() && ptr == value.data() + value.size();
}

bool ParseMode(std::string_view value, MeaninglessMode* out) {
  if (value == "control-list") {
    *out = MeaninglessMode::kControlListOnly;
  } else if (value == "any-dir-read") {
    *out = MeaninglessMode::kAnyDirectoryRead;
  } else if (value == "while-dir-open") {
    *out = MeaninglessMode::kWhileDirectoryOpen;
  } else if (value == "ratio") {
    *out = MeaninglessMode::kRatioHeuristic;
  } else {
    return false;
  }
  return true;
}

std::string_view ModeName(MeaninglessMode mode) {
  switch (mode) {
    case MeaninglessMode::kControlListOnly:
      return "control-list";
    case MeaninglessMode::kAnyDirectoryRead:
      return "any-dir-read";
    case MeaninglessMode::kWhileDirectoryOpen:
      return "while-dir-open";
    case MeaninglessMode::kRatioHeuristic:
      return "ratio";
  }
  return "ratio";
}

Status Fail(int line_number, const std::string& message) {
  std::ostringstream out;
  out << "line " << line_number << ": " << message;
  return Status::InvalidArgument(out.str());
}

}  // namespace

StatusOr<ObserverConfig> ParseObserverControlFile(std::string_view text,
                                                  const ObserverConfig& base) {
  ObserverConfig config = base;
  std::istringstream in{std::string(text)};
  std::string raw;
  int line_number = 0;
  while (std::getline(in, raw)) {
    ++line_number;
    const std::string_view line = Trim(raw);
    if (line.empty() || line.front() == '#') {
      continue;
    }
    const auto [key, value] = SplitDirective(line);
    bool ok = true;
    if (key == "clear") {
      config.meaningless_programs.clear();
      config.transient_dirs.clear();
      config.critical_prefixes.clear();
    } else if (key == "meaningless") {
      ok = !value.empty();
      if (ok) {
        config.meaningless_programs.insert(std::string(value));
      }
    } else if (key == "transient") {
      ok = !value.empty();
      if (ok) {
        config.transient_dirs.emplace_back(value);
      }
    } else if (key == "critical") {
      ok = !value.empty();
      if (ok) {
        config.critical_prefixes.emplace_back(value);
      }
    } else if (key == "dot-files") {
      ok = ParseBool(value, &config.exclude_dot_files);
    } else if (key == "frequent-threshold") {
      ok = ParseDouble(value, &config.frequent_threshold) && config.frequent_threshold >= 0.0 &&
           config.frequent_threshold <= 1.0;
    } else if (key == "frequent-min-total") {
      ok = ParseU64(value, &config.frequent_min_total);
    } else if (key == "meaningless-mode") {
      ok = ParseMode(value, &config.meaningless_mode);
    } else if (key == "meaningless-ratio") {
      ok = ParseDouble(value, &config.meaningless_ratio) && config.meaningless_ratio >= 0.0 &&
           config.meaningless_ratio <= 1.0;
    } else if (key == "meaningless-min-potential") {
      ok = ParseU64(value, &config.meaningless_min_potential);
    } else if (key == "getcwd-threshold") {
      uint64_t v = 0;
      ok = ParseU64(value, &v) && v > 0;
      if (ok) {
        config.getcwd_climb_threshold = static_cast<int>(v);
      }
    } else if (key == "collapse-stat-open") {
      ok = ParseBool(value, &config.collapse_stat_open);
    } else {
      return Fail(line_number, "unknown directive '" + std::string(key) + "'");
    }
    if (!ok) {
      return Fail(line_number,
                  "bad value '" + std::string(value) + "' for '" + std::string(key) + "'");
    }
  }
  return config;
}

std::string FormatObserverControlFile(const ObserverConfig& config) {
  std::ostringstream out;
  out << "# SEER system control file\n";
  out << "clear\n";
  for (const auto& program : config.meaningless_programs) {
    out << "meaningless " << program << '\n';
  }
  for (const auto& dir : config.transient_dirs) {
    out << "transient " << dir << '\n';
  }
  for (const auto& prefix : config.critical_prefixes) {
    out << "critical " << prefix << '\n';
  }
  out << "dot-files " << (config.exclude_dot_files ? "on" : "off") << '\n';
  out << "frequent-threshold " << config.frequent_threshold << '\n';
  out << "frequent-min-total " << config.frequent_min_total << '\n';
  out << "meaningless-mode " << ModeName(config.meaningless_mode) << '\n';
  out << "meaningless-ratio " << config.meaningless_ratio << '\n';
  out << "meaningless-min-potential " << config.meaningless_min_potential << '\n';
  out << "getcwd-threshold " << config.getcwd_climb_threshold << '\n';
  out << "collapse-stat-open " << (config.collapse_stat_open ? "on" : "off") << '\n';
  return out.str();
}

}  // namespace seer
