#include "src/observer/sink_chain.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace seer {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

size_t BucketOf(uint64_t ns) {
  size_t b = 0;
  while (ns > 1 && b + 1 < LatencyHistogram::kBuckets) {
    ns >>= 1;
    ++b;
  }
  return b;
}

}  // namespace

void LatencyHistogram::Record(uint64_t ns) {
  ++buckets_[BucketOf(ns)];
  ++count_;
  sum_ns_ += ns;
  max_ns_ = std::max(max_ns_, ns);
}

uint64_t LatencyHistogram::PercentileNs(double p) const {
  if (count_ == 0) {
    return 0;
  }
  p = std::clamp(p, 0.0, 1.0);
  const uint64_t target = static_cast<uint64_t>(p * static_cast<double>(count_ - 1)) + 1;
  uint64_t seen = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (seen >= target) {
      return 1ull << (b + 1);  // bucket upper bound
    }
  }
  return max_ns_;
}

// --- InstrumentedSink ---------------------------------------------------------

void InstrumentedSink::OnReference(const FileReference& ref) {
  ++counters_.references;
  if (measure_latency_) {
    const uint64_t start = NowNs();
    next_->OnReference(ref);
    latency_.Record(NowNs() - start);
  } else {
    next_->OnReference(ref);
  }
}

void InstrumentedSink::OnProcessFork(Pid parent, Pid child) {
  ++counters_.forks;
  next_->OnProcessFork(parent, child);
}

void InstrumentedSink::OnProcessExit(Pid pid) {
  ++counters_.exits;
  next_->OnProcessExit(pid);
}

void InstrumentedSink::OnFileDeleted(PathId path, Time time) {
  ++counters_.deletes;
  next_->OnFileDeleted(path, time);
}

void InstrumentedSink::OnFileRenamed(PathId from, PathId to, Time time) {
  ++counters_.renames;
  next_->OnFileRenamed(from, to, time);
}

void InstrumentedSink::OnFileExcluded(PathId path) {
  ++counters_.exclusions;
  next_->OnFileExcluded(path);
}

// --- FilterSink ---------------------------------------------------------------

void FilterSink::OnReference(const FileReference& ref) {
  if (keep_ && !keep_(ref)) {
    ++dropped_;
    return;
  }
  ++passed_;
  next_->OnReference(ref);
}

void FilterSink::OnProcessFork(Pid parent, Pid child) { next_->OnProcessFork(parent, child); }
void FilterSink::OnProcessExit(Pid pid) { next_->OnProcessExit(pid); }
void FilterSink::OnFileDeleted(PathId path, Time time) { next_->OnFileDeleted(path, time); }
void FilterSink::OnFileRenamed(PathId from, PathId to, Time time) {
  next_->OnFileRenamed(from, to, time);
}
void FilterSink::OnFileExcluded(PathId path) { next_->OnFileExcluded(path); }

// --- TenantScopedSink ---------------------------------------------------------

ReferenceSink* TenantScopedSink::Resolve() {
  ReferenceSink* sink = route_ ? route_(tenant_) : nullptr;
  if (sink == nullptr) {
    ++unrouted_;
  } else {
    ++routed_;
  }
  return sink;
}

void TenantScopedSink::OnReference(const FileReference& ref) {
  if (ReferenceSink* sink = Resolve()) {
    sink->OnReference(ref);
  }
}

void TenantScopedSink::OnProcessFork(Pid parent, Pid child) {
  if (ReferenceSink* sink = Resolve()) {
    sink->OnProcessFork(parent, child);
  }
}

void TenantScopedSink::OnProcessExit(Pid pid) {
  if (ReferenceSink* sink = Resolve()) {
    sink->OnProcessExit(pid);
  }
}

void TenantScopedSink::OnFileDeleted(PathId path, Time time) {
  if (ReferenceSink* sink = Resolve()) {
    sink->OnFileDeleted(path, time);
  }
}

void TenantScopedSink::OnFileRenamed(PathId from, PathId to, Time time) {
  if (ReferenceSink* sink = Resolve()) {
    sink->OnFileRenamed(from, to, time);
  }
}

void TenantScopedSink::OnFileExcluded(PathId path) {
  if (ReferenceSink* sink = Resolve()) {
    sink->OnFileExcluded(path);
  }
}

// --- TeeSink ------------------------------------------------------------------

void TeeSink::OnReference(const FileReference& ref) {
  for (ReferenceSink* out : outputs_) {
    out->OnReference(ref);
  }
}

void TeeSink::OnProcessFork(Pid parent, Pid child) {
  for (ReferenceSink* out : outputs_) {
    out->OnProcessFork(parent, child);
  }
}

void TeeSink::OnProcessExit(Pid pid) {
  for (ReferenceSink* out : outputs_) {
    out->OnProcessExit(pid);
  }
}

void TeeSink::OnFileDeleted(PathId path, Time time) {
  for (ReferenceSink* out : outputs_) {
    out->OnFileDeleted(path, time);
  }
}

void TeeSink::OnFileRenamed(PathId from, PathId to, Time time) {
  for (ReferenceSink* out : outputs_) {
    out->OnFileRenamed(from, to, time);
  }
}

void TeeSink::OnFileExcluded(PathId path) {
  for (ReferenceSink* out : outputs_) {
    out->OnFileExcluded(path);
  }
}

// --- SinkChain ----------------------------------------------------------------

SinkChain& SinkChain::Instrument(std::string label, bool measure_latency) {
  auto stage = std::make_unique<InstrumentedSink>(std::move(label), head_, measure_latency);
  instrumented_.push_back(stage.get());
  head_ = stage.get();
  stages_.push_back(std::move(stage));
  return *this;
}

SinkChain& SinkChain::Filter(FilterSink::Predicate keep) {
  auto stage = std::make_unique<FilterSink>(std::move(keep), head_);
  filters_.push_back(stage.get());
  head_ = stage.get();
  stages_.push_back(std::move(stage));
  return *this;
}

SinkChain& SinkChain::TeeInto(ReferenceSink* extra) {
  auto stage = std::make_unique<TeeSink>(std::vector<ReferenceSink*>{head_, extra});
  head_ = stage.get();
  stages_.push_back(std::move(stage));
  return *this;
}

std::vector<const InstrumentedSink*> SinkChain::instrumented() const {
  // Stored in insertion (consumer-to-producer) order; report producer-first.
  std::vector<const InstrumentedSink*> out(instrumented_.rbegin(), instrumented_.rend());
  return out;
}

uint64_t SinkChain::total_dropped() const {
  uint64_t dropped = 0;
  for (const FilterSink* f : filters_) {
    dropped += f->dropped();
  }
  return dropped;
}

std::string SinkChain::FormatMetrics() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-18s %10s %8s %8s %8s %9s %9s %9s\n", "stage", "refs",
                "forks", "exits", "ns/ref", "p50", "p99", "max");
  out += line;
  for (const InstrumentedSink* s : instrumented()) {
    const SinkCounters& c = s->counters();
    const LatencyHistogram& h = s->latency();
    std::snprintf(line, sizeof(line), "%-18s %10llu %8llu %8llu %8.0f %9llu %9llu %9llu\n",
                  s->label().c_str(), static_cast<unsigned long long>(c.references),
                  static_cast<unsigned long long>(c.forks),
                  static_cast<unsigned long long>(c.exits), h.mean_ns(),
                  static_cast<unsigned long long>(h.PercentileNs(0.50)),
                  static_cast<unsigned long long>(h.PercentileNs(0.99)),
                  static_cast<unsigned long long>(h.max_ns()));
    out += line;
  }
  if (!filters_.empty()) {
    uint64_t passed = 0;
    for (const FilterSink* f : filters_) {
      passed += f->passed();
    }
    std::snprintf(line, sizeof(line), "filters: %llu passed, %llu dropped\n",
                  static_cast<unsigned long long>(passed),
                  static_cast<unsigned long long>(total_dropped()));
    out += line;
  }
  return out;
}

}  // namespace seer
