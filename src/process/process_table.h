// Simulated process table.
//
// SEER separates reference streams per process and inherits reference
// histories across fork (Section 4.7), so the substrate must model real
// process lifecycles: fork, exec, exit, parent/child links, per-process
// working directories, and per-process file-descriptor tables.
#ifndef SRC_PROCESS_PROCESS_TABLE_H_
#define SRC_PROCESS_PROCESS_TABLE_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/trace/event.h"

namespace seer {

struct OpenFile {
  std::string path;     // resolved absolute path
  bool is_directory = false;
  bool write = false;
};

struct Process {
  Pid pid = 0;
  Pid ppid = 0;
  Uid uid = 0;
  std::string cwd = "/";
  std::string program;  // path of the current executable image
  bool alive = true;
  std::map<Fd, OpenFile> fds;
  Fd next_fd = 3;  // 0-2 reserved for std streams
};

class ProcessTable {
 public:
  ProcessTable();

  // Creates the initial process for a user session (parent = 0).
  Pid SpawnInit(Uid uid, std::string cwd = "/");

  // Forks `parent`; the child inherits uid, cwd and program (fds are NOT
  // inherited — SEER pairs opens and closes per process, and the workloads
  // never pass fds across fork).
  Pid Fork(Pid parent);

  // Replaces the process image.
  bool Exec(Pid pid, std::string program);

  // Marks the process dead and clears its fd table. Returns the fds that
  // were still open (the kernel closes them implicitly).
  std::vector<OpenFile> Exit(Pid pid);

  bool Alive(Pid pid) const;
  const Process* Get(Pid pid) const;
  Process* GetMutable(Pid pid);

  // fd bookkeeping.
  Fd AllocateFd(Pid pid, OpenFile file);
  std::optional<OpenFile> CloseFd(Pid pid, Fd fd);
  const OpenFile* LookupFd(Pid pid, Fd fd) const;

  bool SetCwd(Pid pid, std::string cwd);

  size_t live_count() const;

 private:
  std::map<Pid, Process> processes_;
  Pid next_pid_ = 1;
};

}  // namespace seer

#endif  // SRC_PROCESS_PROCESS_TABLE_H_
