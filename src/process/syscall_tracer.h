// Simulated system-call tracing hook.
//
// The paper instrumented the Linux kernel so that completed system calls are
// reported to SEER's observer, with exec and exit reported before execution
// because their state is destroyed on completion (Section 4.11). This class
// is the substrate equivalent: workload generators issue syscalls through
// it, the calls execute against the SimFilesystem and ProcessTable, and
// every registered sink receives a TraceEvent carrying the completion
// status.
//
// Faithfully modelled behaviours:
//   * superuser calls are not traced by default (deadlock avoidance,
//     Section 4.10);
//   * individual pids (SEER's own observer/correlator and replication
//     daemons) can be marked untraced (Section 4.10);
//   * close events carry the resolved path of the closed descriptor so
//     downstream code need not replicate the kernel's fd table;
//   * an availability filter lets the disconnection simulator turn an
//     otherwise-successful open/exec of a non-hoarded file into a kNotLocal
//     failure — the raw material for hoard-miss detection (Section 4.4).
#ifndef SRC_PROCESS_SYSCALL_TRACER_H_
#define SRC_PROCESS_SYSCALL_TRACER_H_

#include <functional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "src/process/clock.h"
#include "src/process/process_table.h"
#include "src/trace/event.h"
#include "src/vfs/sim_filesystem.h"

namespace seer {

// Receives each traced event immediately after (or, for exec/exit, just
// before) the call completes.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void OnEvent(const TraceEvent& event) = 0;
};

struct SyscallResult {
  OpStatus status = OpStatus::kOk;
  Fd fd = -1;    // valid for Open/OpenDir on success
  Pid pid = -1;  // valid for Fork on success

  bool ok() const { return status == OpStatus::kOk; }
};

class SyscallTracer {
 public:
  SyscallTracer(SimFilesystem* fs, ProcessTable* processes, SimClock* clock);

  // --- configuration ------------------------------------------------------

  void AddSink(TraceSink* sink) { sinks_.push_back(sink); }
  void set_trace_superuser(bool trace) { trace_superuser_ = trace; }

  // Suppresses tracing for a pid (SEER's own daemons).
  void MarkUntraced(Pid pid) { untraced_.insert(pid); }

  // When set, a successful open/exec of an existing file is additionally
  // checked for local availability; if the filter returns false the call
  // fails with kNotLocal. Used by the disconnection simulator.
  using AvailabilityFilter = std::function<bool(const std::string& path)>;
  void set_availability_filter(AvailabilityFilter filter) { availability_ = std::move(filter); }

  // Fixed CPU cost charged to the clock per syscall.
  void set_syscall_cost(Time micros) { syscall_cost_ = micros; }

  // --- syscall surface ----------------------------------------------------

  SyscallResult Fork(Pid parent);
  SyscallResult Exec(Pid pid, std::string_view path);
  SyscallResult Exit(Pid pid);

  SyscallResult Open(Pid pid, std::string_view path, bool write);
  SyscallResult Close(Pid pid, Fd fd);
  SyscallResult Create(Pid pid, std::string_view path, uint64_t size);
  SyscallResult Stat(Pid pid, std::string_view path);
  SyscallResult Chmod(Pid pid, std::string_view path);
  SyscallResult Unlink(Pid pid, std::string_view path);
  SyscallResult Rename(Pid pid, std::string_view from, std::string_view to);
  SyscallResult Link(Pid pid, std::string_view target, std::string_view link_path);
  SyscallResult Mkdir(Pid pid, std::string_view path);
  SyscallResult Rmdir(Pid pid, std::string_view path);
  SyscallResult OpenDir(Pid pid, std::string_view path);
  SyscallResult ReadDir(Pid pid, Fd fd);  // one batch; detail = entry count
  SyscallResult CloseDir(Pid pid, Fd fd);
  SyscallResult Chdir(Pid pid, std::string_view path);

  uint64_t events_emitted() const { return seq_; }
  SimClock* clock() { return clock_; }
  SimFilesystem* fs() { return fs_; }
  ProcessTable* processes() { return processes_; }

 private:
  // Resolves `path` against the process cwd and symlinks. Returns the
  // normalised absolute path even when the target does not exist.
  std::string Canonical(Pid pid, std::string_view path) const;

  bool Traced(Pid pid) const;
  bool LocallyAvailable(const std::string& path) const;
  void Emit(Pid pid, Op op, OpStatus status, std::string path, std::string path2, Fd fd,
            bool write, int32_t detail);

  SimFilesystem* fs_;
  ProcessTable* processes_;
  SimClock* clock_;
  std::vector<TraceSink*> sinks_;
  std::set<Pid> untraced_;
  bool trace_superuser_ = false;
  AvailabilityFilter availability_;
  Time syscall_cost_ = 20;
  uint64_t seq_ = 0;
};

}  // namespace seer

#endif  // SRC_PROCESS_SYSCALL_TRACER_H_
