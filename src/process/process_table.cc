#include "src/process/process_table.h"

namespace seer {

ProcessTable::ProcessTable() = default;

Pid ProcessTable::SpawnInit(Uid uid, std::string cwd) {
  const Pid pid = next_pid_++;
  Process p;
  p.pid = pid;
  p.ppid = 0;
  p.uid = uid;
  p.cwd = std::move(cwd);
  p.program = "/sbin/init";
  processes_.emplace(pid, std::move(p));
  return pid;
}

Pid ProcessTable::Fork(Pid parent) {
  const auto it = processes_.find(parent);
  if (it == processes_.end() || !it->second.alive) {
    return -1;
  }
  const Pid pid = next_pid_++;
  Process child;
  child.pid = pid;
  child.ppid = parent;
  child.uid = it->second.uid;
  child.cwd = it->second.cwd;
  child.program = it->second.program;
  processes_.emplace(pid, std::move(child));
  return pid;
}

bool ProcessTable::Exec(Pid pid, std::string program) {
  Process* p = GetMutable(pid);
  if (p == nullptr || !p->alive) {
    return false;
  }
  p->program = std::move(program);
  return true;
}

std::vector<OpenFile> ProcessTable::Exit(Pid pid) {
  std::vector<OpenFile> leaked;
  Process* p = GetMutable(pid);
  if (p == nullptr || !p->alive) {
    return leaked;
  }
  for (auto& [fd, file] : p->fds) {
    leaked.push_back(std::move(file));
  }
  p->fds.clear();
  p->alive = false;
  return leaked;
}

bool ProcessTable::Alive(Pid pid) const {
  const Process* p = Get(pid);
  return p != nullptr && p->alive;
}

const Process* ProcessTable::Get(Pid pid) const {
  const auto it = processes_.find(pid);
  return it == processes_.end() ? nullptr : &it->second;
}

Process* ProcessTable::GetMutable(Pid pid) {
  const auto it = processes_.find(pid);
  return it == processes_.end() ? nullptr : &it->second;
}

Fd ProcessTable::AllocateFd(Pid pid, OpenFile file) {
  Process* p = GetMutable(pid);
  if (p == nullptr || !p->alive) {
    return -1;
  }
  const Fd fd = p->next_fd++;
  p->fds.emplace(fd, std::move(file));
  return fd;
}

std::optional<OpenFile> ProcessTable::CloseFd(Pid pid, Fd fd) {
  Process* p = GetMutable(pid);
  if (p == nullptr) {
    return std::nullopt;
  }
  const auto it = p->fds.find(fd);
  if (it == p->fds.end()) {
    return std::nullopt;
  }
  OpenFile file = std::move(it->second);
  p->fds.erase(it);
  return file;
}

const OpenFile* ProcessTable::LookupFd(Pid pid, Fd fd) const {
  const Process* p = Get(pid);
  if (p == nullptr) {
    return nullptr;
  }
  const auto it = p->fds.find(fd);
  return it == p->fds.end() ? nullptr : &it->second;
}

bool ProcessTable::SetCwd(Pid pid, std::string cwd) {
  Process* p = GetMutable(pid);
  if (p == nullptr || !p->alive) {
    return false;
  }
  p->cwd = std::move(cwd);
  return true;
}

size_t ProcessTable::live_count() const {
  size_t n = 0;
  for (const auto& [pid, p] : processes_) {
    if (p.alive) {
      ++n;
    }
  }
  return n;
}

}  // namespace seer
