#include "src/process/syscall_tracer.h"

#include "src/util/path.h"

namespace seer {

SyscallTracer::SyscallTracer(SimFilesystem* fs, ProcessTable* processes, SimClock* clock)
    : fs_(fs), processes_(processes), clock_(clock) {}

std::string SyscallTracer::Canonical(Pid pid, std::string_view path) const {
  const Process* p = processes_->Get(pid);
  const std::string abs = AbsolutePath(p != nullptr ? p->cwd : "/", path);
  // Follow symlinks when the target exists; otherwise keep the lexical path
  // (a failed open still has a meaningful name).
  auto resolved = fs_->Resolve(abs);
  return resolved.has_value() ? *resolved : abs;
}

bool SyscallTracer::Traced(Pid pid) const {
  if (untraced_.count(pid) != 0) {
    return false;
  }
  const Process* p = processes_->Get(pid);
  if (p == nullptr) {
    return false;
  }
  if (p->uid == 0 && !trace_superuser_) {
    return false;
  }
  return true;
}

bool SyscallTracer::LocallyAvailable(const std::string& path) const {
  return !availability_ || availability_(path);
}

void SyscallTracer::Emit(Pid pid, Op op, OpStatus status, std::string path, std::string path2,
                         Fd fd, bool write, int32_t detail) {
  clock_->Advance(syscall_cost_);
  if (!Traced(pid)) {
    return;
  }
  const Process* p = processes_->Get(pid);
  TraceEvent e;
  e.seq = ++seq_;
  e.time = clock_->now();
  e.pid = pid;
  e.uid = p != nullptr ? p->uid : -1;
  e.op = op;
  e.status = status;
  e.path = std::move(path);
  e.path2 = std::move(path2);
  e.fd = fd;
  e.write = write;
  e.detail = detail;
  for (TraceSink* sink : sinks_) {
    sink->OnEvent(e);
  }
}

SyscallResult SyscallTracer::Fork(Pid parent) {
  SyscallResult r;
  const Pid child = processes_->Fork(parent);
  if (child < 0) {
    r.status = OpStatus::kNoEnt;
    return r;
  }
  r.pid = child;
  Emit(parent, Op::kFork, OpStatus::kOk, "", "", -1, false, child);
  return r;
}

SyscallResult SyscallTracer::Exec(Pid pid, std::string_view path) {
  SyscallResult r;
  const std::string abs = Canonical(pid, path);
  const auto info = fs_->Stat(abs);
  if (!info.has_value() || info->kind == NodeKind::kDirectory) {
    r.status = OpStatus::kNoEnt;
  } else if (!LocallyAvailable(abs)) {
    r.status = OpStatus::kNotLocal;
  }
  // Exec is traced before execution (Section 4.11): the event is emitted
  // with the outcome the kernel is about to return.
  Emit(pid, Op::kExec, r.status, abs, "", -1, false, 0);
  if (r.ok()) {
    processes_->Exec(pid, abs);
  }
  return r;
}

SyscallResult SyscallTracer::Exit(Pid pid) {
  SyscallResult r;
  if (!processes_->Alive(pid)) {
    r.status = OpStatus::kNoEnt;
    return r;
  }
  // Exit is traced before the process state is destroyed.
  Emit(pid, Op::kExit, OpStatus::kOk, "", "", -1, false, 0);
  processes_->Exit(pid);
  return r;
}

SyscallResult SyscallTracer::Open(Pid pid, std::string_view path, bool write) {
  SyscallResult r;
  const std::string abs = Canonical(pid, path);
  const auto info = fs_->Stat(abs);
  if (!info.has_value()) {
    r.status = OpStatus::kNoEnt;
  } else if (info->kind == NodeKind::kDirectory) {
    r.status = OpStatus::kAccess;  // use OpenDir for directories
  } else if (!LocallyAvailable(abs)) {
    r.status = OpStatus::kNotLocal;
  }
  if (r.ok()) {
    r.fd = processes_->AllocateFd(pid, OpenFile{abs, false, write});
    if (r.fd < 0) {
      r.status = OpStatus::kAccess;
    }
  }
  Emit(pid, Op::kOpen, r.status, abs, "", r.fd, write, 0);
  return r;
}

SyscallResult SyscallTracer::Close(Pid pid, Fd fd) {
  SyscallResult r;
  auto file = processes_->CloseFd(pid, fd);
  if (!file.has_value()) {
    r.status = OpStatus::kNoEnt;
    return r;  // closing a bad fd is not a traced reference
  }
  // The close event carries the path so downstream consumers need no fd map.
  Emit(pid, file->is_directory ? Op::kCloseDir : Op::kClose, OpStatus::kOk, file->path, "", fd,
       file->write, 0);
  return r;
}

SyscallResult SyscallTracer::Create(Pid pid, std::string_view path, uint64_t size) {
  SyscallResult r;
  const std::string abs = Canonical(pid, path);
  const VfsStatus st = fs_->CreateFile(abs, size, clock_->now());
  if (st == VfsStatus::kExists) {
    // creat() of an existing file truncates it; model as open-for-write.
    fs_->Truncate(abs, size, clock_->now());
    return Open(pid, abs, /*write=*/true);
  }
  if (st != VfsStatus::kOk) {
    r.status = OpStatus::kNoEnt;
    Emit(pid, Op::kCreate, r.status, abs, "", -1, true, 0);
    return r;
  }
  r.fd = processes_->AllocateFd(pid, OpenFile{abs, false, true});
  Emit(pid, Op::kCreate, OpStatus::kOk, abs, "", r.fd, true, 0);
  return r;
}

SyscallResult SyscallTracer::Stat(Pid pid, std::string_view path) {
  SyscallResult r;
  const std::string abs = Canonical(pid, path);
  if (!fs_->Exists(abs)) {
    r.status = OpStatus::kNoEnt;
  }
  Emit(pid, Op::kStat, r.status, abs, "", -1, false, 0);
  return r;
}

SyscallResult SyscallTracer::Chmod(Pid pid, std::string_view path) {
  SyscallResult r;
  const std::string abs = Canonical(pid, path);
  if (!fs_->Exists(abs)) {
    r.status = OpStatus::kNoEnt;
  } else {
    fs_->Touch(abs, clock_->now());
  }
  Emit(pid, Op::kChmod, r.status, abs, "", -1, true, 0);
  return r;
}

SyscallResult SyscallTracer::Unlink(Pid pid, std::string_view path) {
  SyscallResult r;
  const std::string abs = Canonical(pid, path);
  const VfsStatus st = fs_->Remove(abs);
  if (st != VfsStatus::kOk) {
    r.status = OpStatus::kNoEnt;
  }
  Emit(pid, Op::kUnlink, r.status, abs, "", -1, true, 0);
  return r;
}

SyscallResult SyscallTracer::Rename(Pid pid, std::string_view from, std::string_view to) {
  SyscallResult r;
  const std::string abs_from = Canonical(pid, from);
  const std::string abs_to = Canonical(pid, to);
  const VfsStatus st = fs_->Rename(abs_from, abs_to);
  if (st != VfsStatus::kOk) {
    r.status = OpStatus::kNoEnt;
  }
  Emit(pid, Op::kRename, r.status, abs_from, abs_to, -1, true, 0);
  return r;
}

SyscallResult SyscallTracer::Link(Pid pid, std::string_view target, std::string_view link_path) {
  SyscallResult r;
  const std::string abs_target = Canonical(pid, target);
  const std::string abs_link = Canonical(pid, link_path);
  const VfsStatus st = fs_->CreateSymlink(abs_link, abs_target);
  if (st != VfsStatus::kOk) {
    r.status = st == VfsStatus::kExists ? OpStatus::kAccess : OpStatus::kNoEnt;
  }
  Emit(pid, Op::kLink, r.status, abs_target, abs_link, -1, true, 0);
  return r;
}

SyscallResult SyscallTracer::Mkdir(Pid pid, std::string_view path) {
  SyscallResult r;
  const std::string abs = Canonical(pid, path);
  const VfsStatus st = fs_->Mkdir(abs);
  if (st != VfsStatus::kOk) {
    r.status = st == VfsStatus::kExists ? OpStatus::kAccess : OpStatus::kNoEnt;
  }
  Emit(pid, Op::kMkdir, r.status, abs, "", -1, true, 0);
  return r;
}

SyscallResult SyscallTracer::Rmdir(Pid pid, std::string_view path) {
  SyscallResult r;
  const std::string abs = Canonical(pid, path);
  const VfsStatus st = fs_->Rmdir(abs);
  if (st != VfsStatus::kOk) {
    r.status = OpStatus::kNoEnt;
  }
  Emit(pid, Op::kRmdir, r.status, abs, "", -1, true, 0);
  return r;
}

SyscallResult SyscallTracer::OpenDir(Pid pid, std::string_view path) {
  SyscallResult r;
  const std::string abs = Canonical(pid, path);
  const auto info = fs_->Stat(abs);
  if (!info.has_value()) {
    r.status = OpStatus::kNoEnt;
  } else if (info->kind != NodeKind::kDirectory) {
    r.status = OpStatus::kAccess;
  }
  if (r.ok()) {
    r.fd = processes_->AllocateFd(pid, OpenFile{abs, true, false});
  }
  Emit(pid, Op::kOpenDir, r.status, abs, "", r.fd, false, 0);
  return r;
}

SyscallResult SyscallTracer::ReadDir(Pid pid, Fd fd) {
  SyscallResult r;
  const OpenFile* file = processes_->LookupFd(pid, fd);
  if (file == nullptr || !file->is_directory) {
    r.status = OpStatus::kNoEnt;
    return r;
  }
  int32_t entries = 0;
  if (availability_) {
    // While disconnected, a listing shows only what is locally replicated
    // (plus directories, which the substrate keeps) — the raw material for
    // "implied" hoard misses (Section 4.4).
    for (const auto& name : fs_->ListDir(file->path)) {
      const std::string child = file->path == "/" ? "/" + name : file->path + "/" + name;
      const auto info = fs_->Stat(child);
      const bool is_dir = info.has_value() && info->kind == NodeKind::kDirectory;
      if (is_dir || LocallyAvailable(child)) {
        ++entries;
      }
    }
  } else {
    entries = static_cast<int32_t>(fs_->DirEntryCount(file->path));
  }
  Emit(pid, Op::kReadDir, OpStatus::kOk, file->path, "", fd, false, entries);
  return r;
}

SyscallResult SyscallTracer::CloseDir(Pid pid, Fd fd) { return Close(pid, fd); }

SyscallResult SyscallTracer::Chdir(Pid pid, std::string_view path) {
  SyscallResult r;
  const std::string abs = Canonical(pid, path);
  const auto info = fs_->Stat(abs);
  if (!info.has_value() || info->kind != NodeKind::kDirectory) {
    r.status = OpStatus::kNoEnt;
  } else {
    processes_->SetCwd(pid, abs);
  }
  Emit(pid, Op::kChdir, r.status, abs, "", -1, false, 0);
  return r;
}

}  // namespace seer
