// Simulated clock.
//
// All trace timestamps come from a single monotonically advancing simulated
// clock. Workload generators advance it to model user think time, compile
// durations, interruptions, and suspensions; the tracer charges a small cost
// per syscall so that back-to-back calls never share a timestamp.
#ifndef SRC_PROCESS_CLOCK_H_
#define SRC_PROCESS_CLOCK_H_

#include "src/trace/event.h"

namespace seer {

class SimClock {
 public:
  explicit SimClock(Time start = 0) : now_(start) {}

  Time now() const { return now_; }

  void Advance(Time micros) {
    if (micros > 0) {
      now_ += micros;
    }
  }

  void AdvanceSeconds(double seconds) {
    Advance(static_cast<Time>(seconds * static_cast<double>(kMicrosPerSecond)));
  }

  void AdvanceHours(double hours) { AdvanceSeconds(hours * 3600.0); }

 private:
  Time now_;
};

}  // namespace seer

#endif  // SRC_PROCESS_CLOCK_H_
