// Peer-to-peer anti-entropy reconciliation (the RUMOR model).
//
// RUMOR is a reconciliation-based, peer-to-peer optimistic replication
// system: every replica accepts updates independently, and any two replicas
// can reconcile pairwise whenever they can talk; updates and conflict
// resolutions propagate epidemically until all replicas converge. The
// two-replica RumorReplicator used by the live simulation is the laptop's
// view of this protocol; GossipNetwork models the whole replica set so the
// epidemic propagation and convergence properties can be exercised and
// tested directly.
#ifndef SRC_REPLICATION_GOSSIP_H_
#define SRC_REPLICATION_GOSSIP_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/replication/version_vector.h"

namespace seer {

struct GossipStats {
  uint64_t reconciliations = 0;
  uint64_t transfers = 0;           // file versions copied between replicas
  uint64_t conflicts_detected = 0;
  uint64_t conflicts_resolved = 0;
};

class GossipNetwork {
 public:
  explicit GossipNetwork(int replica_count);

  int replica_count() const { return static_cast<int>(replicas_.size()); }

  // A local write at `replica`.
  void Update(ReplicaId replica, const std::string& path);

  // Pairwise reconciliation between two replicas: for every file either
  // knows, the dominated side adopts the dominant version; concurrent
  // versions conflict and are resolved deterministically (the join of the
  // two vectors plus a resolution event attributed to the lower replica
  // id), which every other pair will subsequently adopt without
  // re-conflicting.
  void ReconcilePair(ReplicaId a, ReplicaId b);

  // True when all replicas hold identical version vectors for `path`.
  bool Converged(const std::string& path) const;

  // True when every known file has converged everywhere.
  bool FullyConverged() const;

  // Runs ring-topology anti-entropy sweeps (replica i reconciles with
  // i+1 mod N) until convergence; returns the number of sweeps used, or -1
  // if `max_sweeps` was not enough.
  int SweepsToConverge(int max_sweeps);

  const VersionVector& Version(ReplicaId replica, const std::string& path) const;

  // All file paths any replica knows about.
  std::vector<std::string> KnownFiles() const;

  const GossipStats& stats() const { return stats_; }

 private:
  // replica -> path -> version
  std::vector<std::map<std::string, VersionVector>> replicas_;
  GossipStats stats_;
};

}  // namespace seer

#endif  // SRC_REPLICATION_GOSSIP_H_
