// Abstract replication substrate.
//
// SEER deliberately does not move file contents itself: an underlying
// replication system performs the hoarding transport, update propagation,
// and conflict management (Section 2). SEER assumes very little about the
// substrate — which is what makes it portable — but the substrate's
// capabilities determine how hoard misses can be observed (Section 4.4):
// with remote access (Ficus-style), a miss while connected silently becomes
// a remote fetch; without it, a miss surfaces as a failed open that may be
// indistinguishable from ENOENT.
//
// Three simulated substrates ship with the library:
//   * RumorReplicator       — peer-to-peer reconciliation, user level;
//   * CheapRumorReplicator  — custom master-slave service;
//   * CodaReplicator        — remote access + server callbacks.
#ifndef SRC_REPLICATION_REPLICATION_SYSTEM_H_
#define SRC_REPLICATION_REPLICATION_SYSTEM_H_

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "src/trace/event.h"

namespace seer {

struct ReplicationStats {
  uint64_t files_fetched = 0;
  uint64_t bytes_fetched = 0;
  uint64_t files_evicted = 0;
  uint64_t bytes_evicted = 0;
  uint64_t remote_accesses = 0;   // misses serviced remotely while connected
  uint64_t pushed_updates = 0;    // local updates propagated at reconnect
  uint64_t pulled_updates = 0;    // remote updates applied at reconnect
  uint64_t conflicts_detected = 0;
  uint64_t conflicts_resolved = 0;
  uint64_t reconciliations = 0;
};

// Outcome of one reconciliation pass.
struct ReconcileResult {
  std::vector<std::string> pushed;
  std::vector<std::string> pulled;
  std::vector<std::string> conflicts;
};

class ReplicationSystem {
 public:
  using SizeFn = std::function<uint64_t(const std::string& path)>;

  explicit ReplicationSystem(SizeFn size_of) : size_of_(std::move(size_of)) {}
  virtual ~ReplicationSystem() = default;

  virtual std::string Name() const = 0;

  // --- capability probes (Section 4.4) -------------------------------------

  // True when an access to a non-local object while connected is
  // transparently serviced from a remote replica.
  virtual bool SupportsRemoteAccess() const = 0;

  // True when the substrate can tell a hoard miss apart from a reference
  // to a nonexistent file.
  virtual bool CanDetectMisses() const = 0;

  // --- hoard control --------------------------------------------------------

  // Brings the local replica set to exactly `sorted_target` (SEER's chosen
  // hoard, sorted ascending — HoardSelection::PathStrings' native shape),
  // fetching and evicting as needed; membership is tested by binary
  // search. Files modified locally while disconnected are never evicted
  // before reconciliation.
  virtual void SetHoard(const std::vector<std::string>& sorted_target);

  bool IsLocal(const std::string& path) const { return local_.count(path) != 0; }
  const std::set<std::string>& local_set() const { return local_; }

  // Whether an access to `path` succeeds right now. While connected,
  // substrates with remote access service any path (and count a remote
  // access); otherwise the path must be hoarded.
  virtual bool Access(const std::string& path);

  // --- connectivity & updates ----------------------------------------------

  virtual void OnDisconnect(Time now);
  virtual void OnReconnect(Time now);
  bool connected() const { return connected_; }

  // A local write (the laptop user changed the file).
  virtual void RecordLocalUpdate(const std::string& path, Time now);

  // A remote write (someone changed the file on the servers/peers).
  virtual void RecordRemoteUpdate(const std::string& path, Time now);

  // Local namespace changes that must propagate.
  virtual void RecordLocalDelete(const std::string& path, Time now);
  virtual void RecordLocalCreate(const std::string& path, Time now);

  // Runs reconciliation (normally at reconnect; Rumor can also run it
  // peer-to-peer on demand).
  virtual ReconcileResult Reconcile(Time now) = 0;

  const ReplicationStats& stats() const { return stats_; }

 protected:
  uint64_t SizeOf(const std::string& path) const { return size_of_ ? size_of_(path) : 0; }
  void Fetch(const std::string& path);
  void Evict(const std::string& path);

  SizeFn size_of_;
  std::set<std::string> local_;
  std::set<std::string> dirty_local_;   // locally updated since last reconcile
  std::set<std::string> dirty_remote_;  // remotely updated since last reconcile
  std::set<std::string> deleted_local_;
  bool connected_ = true;
  ReplicationStats stats_;
};

}  // namespace seer

#endif  // SRC_REPLICATION_REPLICATION_SYSTEM_H_
