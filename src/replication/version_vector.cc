#include "src/replication/version_vector.h"

#include <set>
#include <sstream>

namespace seer {

VectorOrder VersionVector::Compare(const VersionVector& other) const {
  bool left_ahead = false;
  bool right_ahead = false;
  std::set<ReplicaId> replicas;
  for (const auto& [r, v] : counters_) {
    replicas.insert(r);
  }
  for (const auto& [r, v] : other.counters_) {
    replicas.insert(r);
  }
  for (const ReplicaId r : replicas) {
    const uint64_t a = Get(r);
    const uint64_t b = other.Get(r);
    if (a > b) {
      left_ahead = true;
    } else if (b > a) {
      right_ahead = true;
    }
  }
  if (left_ahead && right_ahead) {
    return VectorOrder::kConcurrent;
  }
  if (left_ahead) {
    return VectorOrder::kDominates;
  }
  if (right_ahead) {
    return VectorOrder::kDominated;
  }
  return VectorOrder::kEqual;
}

void VersionVector::MergeFrom(const VersionVector& other) {
  for (const auto& [r, v] : other.counters_) {
    uint64_t& mine = counters_[r];
    if (v > mine) {
      mine = v;
    }
  }
}

std::string VersionVector::ToString() const {
  std::ostringstream out;
  out << '{';
  bool first = true;
  for (const auto& [r, v] : counters_) {
    if (!first) {
      out << ',';
    }
    first = false;
    out << r << ':' << v;
  }
  out << '}';
  return out.str();
}

}  // namespace seer
