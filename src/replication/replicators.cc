#include "src/replication/replicators.h"

#include <algorithm>

namespace seer {

void RumorReplicator::RecordLocalUpdate(const std::string& path, Time now) {
  ReplicationSystem::RecordLocalUpdate(path, now);
  if (IsLocal(path)) {
    local_versions_[path].Increment(kLaptopReplica);
  }
}

void RumorReplicator::RecordRemoteUpdate(const std::string& path, Time now) {
  ReplicationSystem::RecordRemoteUpdate(path, now);
  peer_versions_[path].Increment(kPeerReplica);
}

ReconcileResult RumorReplicator::Reconcile(Time /*now*/) {
  ReconcileResult result;
  ++stats_.reconciliations;

  // Walk every file either side has touched since the last reconciliation.
  std::set<std::string> touched;
  touched.insert(dirty_local_.begin(), dirty_local_.end());
  touched.insert(dirty_remote_.begin(), dirty_remote_.end());
  touched.insert(deleted_local_.begin(), deleted_local_.end());

  for (const auto& path : touched) {
    if (deleted_local_.count(path) != 0) {
      // Deletion propagates unless the peer updated concurrently — then
      // the peer's version survives (delete/update conflict).
      if (dirty_remote_.count(path) != 0) {
        ++stats_.conflicts_detected;
        ++stats_.conflicts_resolved;
        result.conflicts.push_back(path);
        Fetch(path);  // peer's version comes back
        peer_versions_[path].MergeFrom(local_versions_[path]);
        local_versions_[path] = peer_versions_[path];
      } else {
        result.pushed.push_back(path);
        ++stats_.pushed_updates;
        local_versions_.erase(path);
        peer_versions_.erase(path);
      }
      continue;
    }

    VersionVector& local = local_versions_[path];
    VersionVector& peer = peer_versions_[path];
    switch (local.Compare(peer)) {
      case VectorOrder::kEqual:
        break;
      case VectorOrder::kDominates: {
        result.pushed.push_back(path);
        ++stats_.pushed_updates;
        peer.MergeFrom(local);
        break;
      }
      case VectorOrder::kDominated: {
        ++stats_.pulled_updates;
        result.pulled.push_back(path);
        local.MergeFrom(peer);
        break;
      }
      case VectorOrder::kConcurrent: {
        ++stats_.conflicts_detected;
        result.conflicts.push_back(path);
        const bool local_wins = resolver_ ? resolver_(path) : true;
        ++stats_.conflicts_resolved;
        // Whichever side wins, both vectors converge to the join.
        local.MergeFrom(peer);
        local.Increment(local_wins ? kLaptopReplica : kPeerReplica);
        peer = local;
        break;
      }
    }
  }
  dirty_local_.clear();
  dirty_remote_.clear();
  deleted_local_.clear();
  return result;
}

ReconcileResult CheapRumorReplicator::Reconcile(Time /*now*/) {
  ReconcileResult result;
  ++stats_.reconciliations;

  for (const auto& path : dirty_local_) {
    if (dirty_remote_.count(path) != 0) {
      // Master also changed the file: master wins, local copy saved aside.
      ++stats_.conflicts_detected;
      ++stats_.conflicts_resolved;
      saved_copies_.push_back(path + ".conflict");
      result.conflicts.push_back(path);
      ++stats_.pulled_updates;
      result.pulled.push_back(path);
    } else {
      ++stats_.pushed_updates;
      result.pushed.push_back(path);
    }
  }
  for (const auto& path : dirty_remote_) {
    if (dirty_local_.count(path) != 0) {
      continue;  // handled above
    }
    if (IsLocal(path)) {
      ++stats_.pulled_updates;
      result.pulled.push_back(path);
    }
  }
  for (const auto& path : deleted_local_) {
    ++stats_.pushed_updates;
    result.pushed.push_back(path);
  }
  dirty_local_.clear();
  dirty_remote_.clear();
  deleted_local_.clear();
  return result;
}

ReconcileResult CodaReplicator::Reconcile(Time /*now*/) {
  ReconcileResult result;
  ++stats_.reconciliations;

  for (const auto& path : dirty_local_) {
    if (dirty_remote_.count(path) != 0) {
      ++stats_.conflicts_detected;
      ++stats_.conflicts_resolved;  // application-specific resolvers
      result.conflicts.push_back(path);
    } else {
      ++stats_.pushed_updates;
      result.pushed.push_back(path);
    }
  }
  for (const auto& path : dirty_remote_) {
    if (IsLocal(path) && dirty_local_.count(path) == 0) {
      // Broken callback: the cached copy is stale; refresh it.
      ++callbacks_broken_;
      ++stats_.pulled_updates;
      result.pulled.push_back(path);
    }
  }
  for (const auto& path : deleted_local_) {
    ++stats_.pushed_updates;
    result.pushed.push_back(path);
  }
  dirty_local_.clear();
  dirty_remote_.clear();
  deleted_local_.clear();
  return result;
}

}  // namespace seer
