#include "src/replication/replication_system.h"

#include <algorithm>

namespace seer {

void ReplicationSystem::Fetch(const std::string& path) {
  if (local_.insert(path).second) {
    ++stats_.files_fetched;
    stats_.bytes_fetched += SizeOf(path);
  }
}

void ReplicationSystem::Evict(const std::string& path) {
  if (local_.erase(path) != 0) {
    ++stats_.files_evicted;
    stats_.bytes_evicted += SizeOf(path);
  }
}

void ReplicationSystem::SetHoard(const std::vector<std::string>& sorted_target) {
  // Evictions first (never a dirty file — its only up-to-date copy may be
  // local).
  std::vector<std::string> to_evict;
  for (const auto& path : local_) {
    if (!std::binary_search(sorted_target.begin(), sorted_target.end(), path) &&
        dirty_local_.count(path) == 0) {
      to_evict.push_back(path);
    }
  }
  for (const auto& path : to_evict) {
    Evict(path);
  }
  if (connected_) {
    for (const auto& path : sorted_target) {
      Fetch(path);
    }
  }
  // While disconnected, fetching is impossible; the hoard simply shrinks.
}

bool ReplicationSystem::Access(const std::string& path) {
  if (IsLocal(path)) {
    return true;
  }
  if (connected_ && SupportsRemoteAccess()) {
    ++stats_.remote_accesses;
    // Remote access also caches the object locally (the substrate will
    // fetch on demand).
    Fetch(path);
    return true;
  }
  return false;
}

void ReplicationSystem::OnDisconnect(Time /*now*/) { connected_ = false; }

void ReplicationSystem::OnReconnect(Time now) {
  connected_ = true;
  Reconcile(now);
}

void ReplicationSystem::RecordLocalUpdate(const std::string& path, Time /*now*/) {
  if (IsLocal(path)) {
    dirty_local_.insert(path);
  }
}

void ReplicationSystem::RecordRemoteUpdate(const std::string& path, Time /*now*/) {
  dirty_remote_.insert(path);
}

void ReplicationSystem::RecordLocalDelete(const std::string& path, Time /*now*/) {
  if (local_.erase(path) != 0) {
    deleted_local_.insert(path);
  }
  dirty_local_.erase(path);
}

void ReplicationSystem::RecordLocalCreate(const std::string& path, Time now) {
  // A file created locally is local by definition and must propagate.
  local_.insert(path);
  dirty_local_.insert(path);
  deleted_local_.erase(path);
  (void)now;
}

}  // namespace seer
