// Version vectors for optimistic replication.
//
// SEER sits atop a replication substrate (Rumor, Cheap Rumor, Coda, ...)
// that moves file contents and reconciles concurrent updates. Our simulated
// substrates use classic version vectors: one counter per replica,
// incremented on local update; vector comparison classifies two replicas'
// states as equal, dominated, or concurrent (a conflict).
#ifndef SRC_REPLICATION_VERSION_VECTOR_H_
#define SRC_REPLICATION_VERSION_VECTOR_H_

#include <cstdint>
#include <map>
#include <string>

namespace seer {

using ReplicaId = uint32_t;

enum class VectorOrder : uint8_t {
  kEqual,
  kDominates,    // left strictly newer
  kDominated,    // right strictly newer
  kConcurrent,   // conflict
};

class VersionVector {
 public:
  void Increment(ReplicaId replica) { ++counters_[replica]; }

  uint64_t Get(ReplicaId replica) const {
    const auto it = counters_.find(replica);
    return it == counters_.end() ? 0 : it->second;
  }

  // Componentwise comparison of *this against `other`.
  VectorOrder Compare(const VersionVector& other) const;

  // Componentwise maximum (used after reconciliation).
  void MergeFrom(const VersionVector& other);

  bool Empty() const { return counters_.empty(); }

  std::string ToString() const;

 private:
  std::map<ReplicaId, uint64_t> counters_;
};

}  // namespace seer

#endif  // SRC_REPLICATION_VERSION_VECTOR_H_
