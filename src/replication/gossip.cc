#include "src/replication/gossip.h"

namespace seer {

GossipNetwork::GossipNetwork(int replica_count) : replicas_(static_cast<size_t>(replica_count)) {}

void GossipNetwork::Update(ReplicaId replica, const std::string& path) {
  replicas_[replica][path].Increment(replica);
}

void GossipNetwork::ReconcilePair(ReplicaId a, ReplicaId b) {
  ++stats_.reconciliations;
  std::set<std::string> paths;
  for (const auto& [path, vv] : replicas_[a]) {
    paths.insert(path);
  }
  for (const auto& [path, vv] : replicas_[b]) {
    paths.insert(path);
  }
  for (const auto& path : paths) {
    VersionVector& va = replicas_[a][path];
    VersionVector& vb = replicas_[b][path];
    switch (va.Compare(vb)) {
      case VectorOrder::kEqual:
        break;
      case VectorOrder::kDominates:
        vb = va;
        ++stats_.transfers;
        break;
      case VectorOrder::kDominated:
        va = vb;
        ++stats_.transfers;
        break;
      case VectorOrder::kConcurrent: {
        ++stats_.conflicts_detected;
        // Deterministic resolution: take the join and stamp a resolution
        // event from the lower-numbered replica. Every other replica will
        // see this version dominate and adopt it without re-conflicting —
        // the property that makes epidemic conflict resolution converge.
        va.MergeFrom(vb);
        va.Increment(std::min(a, b));
        vb = va;
        ++stats_.conflicts_resolved;
        ++stats_.transfers;
        break;
      }
    }
  }
}

bool GossipNetwork::Converged(const std::string& path) const {
  const VersionVector* first = nullptr;
  for (const auto& replica : replicas_) {
    const auto it = replica.find(path);
    const VersionVector* vv = it == replica.end() ? nullptr : &it->second;
    if (first == nullptr) {
      first = vv;
      continue;
    }
    if (vv == nullptr || first == nullptr) {
      return false;
    }
    if (first->Compare(*vv) != VectorOrder::kEqual) {
      return false;
    }
  }
  return true;
}

bool GossipNetwork::FullyConverged() const {
  for (const auto& path : KnownFiles()) {
    if (!Converged(path)) {
      return false;
    }
  }
  return true;
}

int GossipNetwork::SweepsToConverge(int max_sweeps) {
  for (int sweep = 1; sweep <= max_sweeps; ++sweep) {
    const int n = replica_count();
    for (int i = 0; i < n; ++i) {
      ReconcilePair(static_cast<ReplicaId>(i), static_cast<ReplicaId>((i + 1) % n));
    }
    if (FullyConverged()) {
      return sweep;
    }
  }
  return -1;
}

const VersionVector& GossipNetwork::Version(ReplicaId replica, const std::string& path) const {
  static const VersionVector kEmpty;
  const auto it = replicas_[replica].find(path);
  return it == replicas_[replica].end() ? kEmpty : it->second;
}

std::vector<std::string> GossipNetwork::KnownFiles() const {
  std::set<std::string> paths;
  for (const auto& replica : replicas_) {
    for (const auto& [path, vv] : replica) {
      paths.insert(path);
    }
  }
  return std::vector<std::string>(paths.begin(), paths.end());
}

}  // namespace seer
