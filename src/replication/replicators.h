// Concrete replication substrates.
//
// RumorReplicator — a simulation of the RUMOR user-level,
// reconciliation-based optimistic replication system: both replicas (the
// laptop and its home peer) accept updates independently; per-file version
// vectors detect concurrent updates at reconciliation; conflicts are
// resolved by a pluggable resolver (default: latest-writer-wins, with the
// losing version counted). Misses cannot be detected by the substrate —
// SEER must rely on the manual reporter and its own automatic detector.
//
// CheapRumorReplicator — a master-slave service: the servers are
// authoritative; local updates are pushed at reconnect; a local update to a
// file the master also changed is a conflict that the master wins (the
// local version is saved aside, counted as resolved).
//
// CodaReplicator — Coda-style: while connected, an access to a non-cached
// object is serviced remotely and cached (callbacks keep it fresh); the
// substrate can therefore tell SEER about misses directly, and remote
// updates invalidate cached copies at reconciliation.
#ifndef SRC_REPLICATION_REPLICATORS_H_
#define SRC_REPLICATION_REPLICATORS_H_

#include <map>

#include "src/replication/replication_system.h"
#include "src/replication/version_vector.h"

namespace seer {

constexpr ReplicaId kLaptopReplica = 0;
constexpr ReplicaId kPeerReplica = 1;

// Chooses the surviving version for a conflicting file. Returns true when
// the local version wins.
using ConflictResolver = std::function<bool(const std::string& path)>;

class RumorReplicator : public ReplicationSystem {
 public:
  explicit RumorReplicator(SizeFn size_of, ConflictResolver resolver = nullptr)
      : ReplicationSystem(std::move(size_of)), resolver_(std::move(resolver)) {}

  std::string Name() const override { return "rumor"; }
  bool SupportsRemoteAccess() const override { return false; }
  bool CanDetectMisses() const override { return false; }

  void RecordLocalUpdate(const std::string& path, Time now) override;
  void RecordRemoteUpdate(const std::string& path, Time now) override;
  ReconcileResult Reconcile(Time now) override;

  // Version inspection (for tests).
  const VersionVector& LocalVersion(const std::string& path) { return local_versions_[path]; }
  const VersionVector& PeerVersion(const std::string& path) { return peer_versions_[path]; }

 private:
  ConflictResolver resolver_;
  std::map<std::string, VersionVector> local_versions_;
  std::map<std::string, VersionVector> peer_versions_;
};

class CheapRumorReplicator : public ReplicationSystem {
 public:
  explicit CheapRumorReplicator(SizeFn size_of) : ReplicationSystem(std::move(size_of)) {}

  std::string Name() const override { return "cheap-rumor"; }
  bool SupportsRemoteAccess() const override { return false; }
  bool CanDetectMisses() const override { return false; }

  ReconcileResult Reconcile(Time now) override;

  // Conflicting local versions saved aside as "<path>.conflict".
  const std::vector<std::string>& saved_conflict_copies() const { return saved_copies_; }

 private:
  std::vector<std::string> saved_copies_;
};

class CodaReplicator : public ReplicationSystem {
 public:
  explicit CodaReplicator(SizeFn size_of) : ReplicationSystem(std::move(size_of)) {}

  std::string Name() const override { return "coda"; }
  bool SupportsRemoteAccess() const override { return true; }
  bool CanDetectMisses() const override { return true; }

  ReconcileResult Reconcile(Time now) override;

  // Callback break count: remote updates that invalidated a cached copy.
  uint64_t callbacks_broken() const { return callbacks_broken_; }

 private:
  uint64_t callbacks_broken_ = 0;
};

}  // namespace seer

#endif  // SRC_REPLICATION_REPLICATORS_H_
