#include "src/server/tenant_router.h"

#include <algorithm>
#include <utility>

#include "src/core/params_io.h"
#include "src/server/tenant_aux_io.h"

namespace seer {

TenantRouter::TenantRouter(Fs* fs, std::string root, TenantRouterConfig config)
    : fs_(fs), root_(std::move(root)), config_(config), pool_(config.threads) {}

TenantRouter::~TenantRouter() {
  const Status status = Shutdown();
  if (last_error_.ok() && !status.ok()) {
    last_error_ = status;
  }
}

TenantRouter::Tenant* TenantRouter::FindTenant(TenantId tenant) {
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? nullptr : &it->second;
}

const TenantRouter::Tenant* TenantRouter::FindTenant(TenantId tenant) const {
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? nullptr : &it->second;
}

Time TenantRouter::StaggerPhase(TenantId tenant) const {
  const size_t slots = std::max<size_t>(1, config_.stagger_slots);
  return static_cast<Time>(tenant % slots) * (config_.checkpoint_interval / static_cast<Time>(slots));
}

ReferenceSink* TenantRouter::SinkFor(TenantId tenant) {
  auto [it, inserted] = tenants_.try_emplace(tenant);
  Tenant& t = it->second;
  if (inserted) {
    t.id = tenant;
    t.manager.set_budget_bytes(config_.hoard_budget_bytes);
    t.scoped = std::make_unique<TenantScopedSink>(
        tenant, [this](TenantId id) { return Route(id); });
  }
  return t.scoped.get();
}

StatusOr<Correlator*> TenantRouter::CorrelatorFor(TenantId tenant) {
  SinkFor(tenant);  // ensure the tenant exists
  Tenant* t = ResidentTenant(tenant);
  if (t == nullptr) {
    return last_error_;
  }
  return &t->durable->correlator();
}

ReferenceSink* TenantRouter::Route(TenantId tenant) {
  Tenant* t = ResidentTenant(tenant);
  if (t == nullptr) {
    return nullptr;
  }
  t->last_touch_seq.store(touch_seq_.fetch_add(1, std::memory_order_relaxed) + 1,
                          std::memory_order_relaxed);
  return t->durable.get();
}

TenantRouter::Tenant* TenantRouter::ResidentTenant(TenantId tenant) {
  if (tenant == kInvalidTenantId) {
    // Never materialise a store for the sentinel id — a directory named
    // after it would shadow a real tenant's namespace and confuse every
    // admin surface.
    if (last_error_.ok()) {
      last_error_ = Status::InvalidArgument("invalid tenant id " + std::to_string(tenant));
    }
    return nullptr;
  }
  SinkFor(tenant);
  Tenant* t = FindTenant(tenant);
  if (t->durable == nullptr) {
    const Status restored = Restore(t);
    if (!restored.ok()) {
      if (last_error_.ok()) {
        last_error_ = restored;
      }
      return nullptr;
    }
  }
  return t;
}

Status TenantRouter::EnsureAuxLoaded(Tenant* t) {
  // Loaded once per router lifetime — after that the in-memory copies
  // survive eviction and are strictly newer than disk.
  if (t->aux_loaded) {
    return Status::Ok();
  }
  SEER_ASSIGN_OR_RETURN(TenantAuxState aux,
                        LoadTenantAux(fs_, SnapshotStore::TenantDirectory(root_, t->id)));
  if (!aux.empty()) {
    for (const PathId pin : aux.pins) {
      t->manager.Pin(pin);
    }
    t->miss_log.RestoreState(std::move(aux.miss_records), std::move(aux.pending_hoard));
  }
  t->aux_loaded = true;
  return Status::Ok();
}

Status TenantRouter::Restore(Tenant* t) {
  const std::string dir = SnapshotStore::TenantDirectory(root_, t->id);
  // Recover the aux section (pins, miss log, pending hoards) before the
  // store opens: a malformed aux file must fail while the tenant is still
  // cleanly evicted.
  SEER_RETURN_IF_ERROR(EnsureAuxLoaded(t));
  // Per-tenant params override, layered over the fleet defaults. A fresh
  // store seeds from it directly; a recovered snapshot's own PRMS section
  // wins inside Open, so the override is re-applied afterwards
  // (max_neighbors stays pinned to the slab geometry either way).
  SeerParams effective = config_.defaults;
  bool overridden = false;
  const std::string params_path = ParamsPath(t->id);
  if (fs_->Exists(params_path)) {
    SEER_ASSIGN_OR_RETURN(const std::string text, fs_->ReadFile(params_path));
    SEER_ASSIGN_OR_RETURN(effective, ParseSeerParams(text, config_.defaults));
    overridden = true;
  }
  SEER_ASSIGN_OR_RETURN(t->durable, DurableCorrelator::Open(fs_, dir, effective,
                                                            config_.store_options, &pool_));
  if (overridden) {
    t->durable->correlator().OverrideTuningParams(effective);
  }
  // Hoard fills multiplex onto the router's pool (a pool per tenant would
  // oversubscribe the host, same reasoning as the clustering plane).
  t->manager.set_shared_pool(&pool_);
  // The router's scheduler owns checkpoint cadence, so the daemon gets no
  // durable handle: its job here is purely the refill recipe.
  HoardDaemonConfig daemon_config;
  daemon_config.interval = config_.hoard_interval;
  t->daemon = std::make_unique<HoardDaemon>(
      &t->durable->correlator(), /*observer=*/nullptr, &t->manager, &t->miss_log,
      /*install=*/nullptr, config_.size_of, daemon_config);
  if (t->restores > 0 || t->evictions > 0) {
    ++restores_;
    ++t->restores;
  } else {
    // First materialisation counts as neither a restore nor an eviction.
    t->restores = 1;
  }
  t->next_checkpoint_due = StaggerPhase(t->id);
  t->checkpoint_inflight = false;
  t->durable_generation = t->durable->generation();
  t->last_files = t->durable->correlator().files().size();
  return Status::Ok();
}

std::string TenantRouter::ParamsPath(TenantId tenant) const {
  return SnapshotStore::TenantDirectory(root_, tenant) + "/params.seer";
}

Status TenantRouter::PersistTenantMeta(Tenant* t) {
  t->durable_generation = t->durable->generation();
  t->last_files = t->durable->correlator().files().size();
  return WriteTenantAux(fs_, SnapshotStore::TenantDirectory(root_, t->id), t->manager,
                        t->miss_log);
}

Status TenantRouter::SetTenantParams(TenantId tenant, const std::string& text) {
  if (tenant == kInvalidTenantId) {
    return Status::InvalidArgument("invalid tenant id " + std::to_string(tenant));
  }
  // Validate before touching disk: a bad directive must not leave a
  // half-written override behind.
  SEER_ASSIGN_OR_RETURN(const SeerParams effective, ParseSeerParams(text, config_.defaults));
  SinkFor(tenant);  // materialise the tenant entry
  const std::string dir = SnapshotStore::TenantDirectory(root_, tenant);
  SEER_RETURN_IF_ERROR(fs_->MakeDirs(dir));
  const std::string path = ParamsPath(tenant);
  const std::string tmp = path + ".tmp";
  SEER_RETURN_IF_ERROR(fs_->WriteFile(tmp, text));
  SEER_RETURN_IF_ERROR(fs_->SyncFile(tmp));
  SEER_RETURN_IF_ERROR(fs_->RenameFile(tmp, path));
  SEER_RETURN_IF_ERROR(fs_->SyncDir(dir));
  Tenant* t = FindTenant(tenant);
  if (t != nullptr && t->durable != nullptr) {
    t->durable->correlator().OverrideTuningParams(effective);
  }
  return Status::Ok();
}

StatusOr<std::string> TenantRouter::GetTenantParams(TenantId tenant) const {
  const Tenant* t = FindTenant(tenant);
  if (t != nullptr && t->durable != nullptr) {
    return FormatSeerParams(t->durable->correlator().params());
  }
  const std::string path = ParamsPath(tenant);
  SeerParams effective = config_.defaults;
  if (fs_->Exists(path)) {
    SEER_ASSIGN_OR_RETURN(const std::string text, fs_->ReadFile(path));
    SEER_ASSIGN_OR_RETURN(effective, ParseSeerParams(text, config_.defaults));
  } else if (t == nullptr) {
    return Status::NotFound("unknown tenant " + std::to_string(tenant));
  }
  return FormatSeerParams(effective);
}

HoardManager* TenantRouter::HoardFor(TenantId tenant) {
  if (tenant == kInvalidTenantId) {
    return nullptr;
  }
  SinkFor(tenant);
  Tenant* t = FindTenant(tenant);
  // The pin set must reflect persisted state even while the tenant is
  // evicted (no Restore has run yet on this router).
  const Status loaded = EnsureAuxLoaded(t);
  if (!loaded.ok() && last_error_.ok()) {
    last_error_ = loaded;
  }
  return &t->manager;
}

MissLog* TenantRouter::MissLogFor(TenantId tenant) {
  if (tenant == kInvalidTenantId) {
    return nullptr;
  }
  SinkFor(tenant);
  Tenant* t = FindTenant(tenant);
  const Status loaded = EnsureAuxLoaded(t);
  if (!loaded.ok() && last_error_.ok()) {
    last_error_ = loaded;
  }
  return &t->miss_log;
}

void TenantRouter::RecordSealStall(uint64_t micros) {
  if (seal_stalls_.size() < kSealStallWindow) {
    seal_stalls_.push_back(micros);
    return;
  }
  seal_stalls_[seal_stall_next_] = micros;
  seal_stall_next_ = (seal_stall_next_ + 1) % kSealStallWindow;
}

void TenantRouter::HarvestCheckpoint(Tenant* t) {
  const Status finished = t->durable->FinishCheckpoint();
  t->checkpoint_inflight = false;
  if (inflight_ > 0) {
    --inflight_;
  }
  if (!finished.ok()) {
    if (last_error_.ok()) {
      last_error_ = finished;
    }
    return;
  }
  ++checkpoints_harvested_;
  ++t->checkpoints;
  RecordSealStall(t->durable->last_checkpoint_stats().seal_micros);
  const Status persisted = PersistTenantMeta(t);
  if (last_error_.ok() && !persisted.ok()) {
    last_error_ = persisted;
  }
}

Status TenantRouter::SettleCheckpoint(Tenant* t) {
  if (!t->checkpoint_inflight) {
    return Status::Ok();
  }
  const Status finished = t->durable->FinishCheckpoint();
  t->checkpoint_inflight = false;
  if (inflight_ > 0) {
    --inflight_;
  }
  if (finished.ok()) {
    ++checkpoints_harvested_;
    ++t->checkpoints;
    RecordSealStall(t->durable->last_checkpoint_stats().seal_micros);
    return PersistTenantMeta(t);
  }
  return finished;
}

Status TenantRouter::CheckpointTenant(TenantId tenant) {
  Tenant* t = ResidentTenant(tenant);
  if (t == nullptr) {
    return last_error_;
  }
  SEER_RETURN_IF_ERROR(SettleCheckpoint(t));
  SEER_RETURN_IF_ERROR(t->durable->Checkpoint());
  ++checkpoints_started_;
  ++checkpoints_harvested_;
  ++t->checkpoints;
  RecordSealStall(t->durable->last_checkpoint_stats().seal_micros);
  return PersistTenantMeta(t);
}

Status TenantRouter::EvictLocked(Tenant* t) {
  // Settle, then fold the WAL into a final snapshot so the next restore
  // decodes one chain and replays nothing.
  SEER_RETURN_IF_ERROR(SettleCheckpoint(t));
  SEER_RETURN_IF_ERROR(t->durable->Checkpoint());
  ++checkpoints_started_;
  ++checkpoints_harvested_;
  ++t->checkpoints;
  SEER_RETURN_IF_ERROR(PersistTenantMeta(t));
  t->daemon.reset();
  t->durable.reset();
  t->memory_bytes = 0;
  ++evictions_;
  ++t->evictions;
  return Status::Ok();
}

Status TenantRouter::EvictTenant(TenantId tenant) {
  Tenant* t = FindTenant(tenant);
  if (t == nullptr) {
    return Status::NotFound("unknown tenant " + std::to_string(tenant));
  }
  if (t->durable == nullptr) {
    return Status::Ok();
  }
  const Status status = EvictLocked(t);
  RefreshResidentBytes();
  return status;
}

void TenantRouter::RefreshResidentBytes() {
  uint64_t total = 0;
  for (auto& [id, t] : tenants_) {
    (void)id;
    if (t.durable == nullptr) {
      continue;
    }
    t.memory_bytes = t.durable->correlator().MemoryBytes();
    t.durable_generation = t.durable->generation();
    t.last_files = t.durable->correlator().files().size();
    total += t.memory_bytes;
  }
  resident_bytes_ = total;
}

Status TenantRouter::Tick(Time now) {
  Status first_error;
  const auto latch = [&first_error](const Status& status) {
    if (first_error.ok() && !status.ok()) {
      first_error = status;
    }
  };

  // 1. Harvest checkpoints that finished since the last tick — frees
  //    inflight slots before the start pass below.
  for (auto& [id, t] : tenants_) {
    (void)id;
    if (t.checkpoint_inflight && t.durable->CheckpointDone()) {
      HarvestCheckpoint(&t);
    }
  }

  // 2. Start due checkpoints, most overdue first, within the budget.
  std::vector<Tenant*> due;
  for (auto& [id, t] : tenants_) {
    (void)id;
    if (t.durable == nullptr || t.checkpoint_inflight) {
      continue;
    }
    if (now >= t.next_checkpoint_due ||
        t.durable->wal_bytes() >= config_.wal_checkpoint_bytes) {
      due.push_back(&t);
    }
  }
  std::sort(due.begin(), due.end(), [](const Tenant* a, const Tenant* b) {
    return a->next_checkpoint_due != b->next_checkpoint_due
               ? a->next_checkpoint_due < b->next_checkpoint_due
               : a->id < b->id;
  });
  for (Tenant* t : due) {
    if (inflight_ >= config_.max_checkpoints_inflight) {
      break;
    }
    const Status begun = t->durable->BeginCheckpoint();
    latch(begun);
    if (t->durable->checkpoint_in_flight()) {
      t->checkpoint_inflight = true;
      ++inflight_;
      ++checkpoints_started_;
    }
    t->next_checkpoint_due = now + config_.checkpoint_interval;
  }

  // 3. Due hoard refills (bounded per tick; the selection runs inline).
  if (config_.hoard_budget_bytes > 0) {
    size_t refilled = 0;
    for (auto& [id, t] : tenants_) {
      (void)id;
      if (refilled >= config_.max_refills_per_tick) {
        break;
      }
      if (t.durable == nullptr || t.daemon == nullptr) {
        continue;
      }
      if (t.last_refill >= 0 && now - t.last_refill < config_.hoard_interval) {
        continue;
      }
      const auto refill_start = std::chrono::steady_clock::now();
      t.daemon->ForceRefill(now);
      t.last_refill_us = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - refill_start)
              .count());
      t.refill_us_total += t.last_refill_us;
      t.last_refill = now;
      ++t.refills;
      ++refilled;
    }
  }

  // 4. Eviction pass: recompute residency, then release the coldest
  //    tenants until both budgets hold. Tenants with a checkpoint in
  //    flight are skipped this round (the next tick gets them).
  RefreshResidentBytes();
  const bool bounded = config_.max_resident_bytes > 0 || config_.max_resident_tenants > 0;
  if (bounded) {
    while (true) {
      const size_t residents = resident_tenants();
      const bool over_bytes =
          config_.max_resident_bytes > 0 && resident_bytes_ > config_.max_resident_bytes;
      const bool over_count =
          config_.max_resident_tenants > 0 && residents > config_.max_resident_tenants;
      if (!over_bytes && !over_count) {
        break;
      }
      Tenant* coldest = nullptr;
      for (auto& [id, t] : tenants_) {
        (void)id;
        if (t.durable == nullptr || t.checkpoint_inflight) {
          continue;
        }
        if (coldest == nullptr || t.last_touch_seq.load(std::memory_order_relaxed) <
                                      coldest->last_touch_seq.load(std::memory_order_relaxed)) {
          coldest = &t;
        }
      }
      if (coldest == nullptr) {
        break;  // everything evictable is checkpointing; next tick
      }
      const uint64_t freed = coldest->memory_bytes;
      const Status evicted = EvictLocked(coldest);
      latch(evicted);
      if (!evicted.ok()) {
        // A failed eviction (e.g. the folding checkpoint hit a full disk)
        // leaves the tenant resident with its LRU clock unchanged, so
        // retrying within this pass would re-select the same victim
        // forever. Give up for this tick; the next one retries.
        break;
      }
      resident_bytes_ -= std::min(resident_bytes_, freed);
    }
  }
  return first_error;
}

Status TenantRouter::DrainCheckpoints() {
  Status first_error;
  for (auto& [id, t] : tenants_) {
    (void)id;
    const Status status = SettleCheckpoint(&t);
    if (first_error.ok() && !status.ok()) {
      first_error = status;
    }
  }
  return first_error;
}

Status TenantRouter::Shutdown() {
  Status first_error;
  for (auto& [id, t] : tenants_) {
    (void)id;
    if (t.durable == nullptr) {
      continue;
    }
    const Status status = EvictLocked(&t);
    if (first_error.ok() && !status.ok()) {
      first_error = status;
    }
  }
  resident_bytes_ = 0;
  return first_error;
}

std::vector<TenantId> TenantRouter::ListTenants() const {
  std::vector<TenantId> out;
  out.reserve(tenants_.size());
  for (const auto& [id, t] : tenants_) {
    (void)t;
    out.push_back(id);
  }
  return out;
}

StatusOr<TenantStats> TenantRouter::Stats(TenantId tenant) const {
  const Tenant* t = FindTenant(tenant);
  if (t == nullptr) {
    return Status::NotFound("unknown tenant " + std::to_string(tenant));
  }
  TenantStats stats;
  stats.tenant = tenant;
  stats.resident = t->durable != nullptr;
  stats.references = t->scoped != nullptr ? t->scoped->routed() : 0;
  stats.memory_bytes = t->memory_bytes;
  stats.checkpoints = t->checkpoints;
  stats.evictions = t->evictions;
  stats.restores = t->restores > 0 ? t->restores - 1 : 0;  // first open is not a restore
  stats.refills = t->refills;
  stats.refill_us_total = t->refill_us_total;
  stats.last_refill_us = t->last_refill_us;
  stats.hoard_dirty_clusters = t->manager.last_fill_stats().dirty_clusters;
  stats.generation = t->durable_generation;
  stats.files = t->last_files;
  if (t->durable != nullptr) {
    stats.generation = t->durable->generation();
    stats.wal_bytes = t->durable->wal_bytes();
  }
  if (t->daemon != nullptr) {
    stats.hoard_files = t->daemon->last_selection().files.size();
  }
  return stats;
}

bool TenantRouter::TenantResident(TenantId tenant) const {
  const Tenant* t = FindTenant(tenant);
  return t != nullptr && t->durable != nullptr;
}

size_t TenantRouter::resident_tenants() const {
  size_t n = 0;
  for (const auto& [id, t] : tenants_) {
    (void)id;
    if (t.durable != nullptr) {
      ++n;
    }
  }
  return n;
}

}  // namespace seer
