// Multi-tenant hoard service: one process, many correlators.
//
// The single-instance stack pairs one Observer with one Correlator on one
// machine. A hoard *service* inverts that: many devices (tenants) stream
// references into one server process, each getting its own Correlator +
// relation-table slab + HoardDaemon, while the expensive shared resources
// — the worker ThreadPool and the checkpoint plane — are multiplexed
// across all of them. TenantRouter is that server plane:
//
//   * SinkFor(t) returns tenant t's ingress — a TenantScopedSink with a
//     stable address, so the transport layer binds it once. Behind it the
//     router resolves every callback to the tenant's DurableCorrelator,
//     creating the tenant on first reference and transparently restoring
//     it if it was evicted.
//   * One shared ThreadPool runs every tenant's ingest measurement,
//     cluster scoring, recovery decode, and snapshot encode. Pools are
//     never created per tenant; contended dispatches fall back to inline
//     execution (see ThreadPool), so results are unchanged.
//   * Tick(now) drives the control plane: harvest finished background
//     checkpoints, start due ones under a max_checkpoints_inflight
//     budget (per-tenant due times staggered across the interval so the
//     fleet never checkpoints in phase), run due hoard refills, and
//     evict cold tenants when over the memory budget.
//   * Eviction is seal-and-release: settle any in-flight checkpoint,
//     fold the WAL into a synchronous snapshot, then free the tenant's
//     correlator, slab, and daemon. The tenant's sink stays valid; the
//     next event re-opens the store (recovery replays nothing — the
//     evicting checkpoint left an empty WAL) and learning resumes.
//
// Isolation invariant, proven by tests/multitenant_test.cc: interleaving
// any number of tenants over the shared pool — including evict/restore
// cycles — leaves every tenant's EncodeSnapshot() byte-identical to a
// standalone single-instance run fed the same stream, at any thread
// count. One laptop == one tenant is the degenerate case, and each
// tenant's store directory is an ordinary single-instance store that
// `seerctl db` reads unchanged.
//
// Threading: the router itself is a single-threaded control plane; the
// parallelism lives in the shared pool below it. It is not safe to call
// two router methods concurrently — with one narrowly-scoped exception
// the sharded transport (service.h) relies on, under external locking:
//
//   Holding a shared (reader) lock that excludes every other router
//   method, multiple threads may concurrently (a) call TenantResident()
//   and (b) deliver sink callbacks to *distinct already-resident*
//   tenants — provided each tenant's callbacks are additionally
//   serialized by a per-tenant lock. This is sound because a routed
//   callback on a resident tenant mutates only that tenant's own state
//   plus the LRU clock, which is atomic (touch_seq_/last_touch_seq are
//   relaxed atomics; the eviction scan tolerates torn ordering), and
//   because tenants_ map nodes are pointer-stable and no method that
//   inserts, restores, or evicts runs while the shared lock is held.
//   Anything that might create/restore/evict a tenant — SinkFor on a new
//   id, first delivery to a non-resident tenant, Tick, control verbs,
//   Shutdown — must hold the exclusive side of that lock.
#ifndef SRC_SERVER_TENANT_ROUTER_H_
#define SRC_SERVER_TENANT_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/correlator.h"
#include "src/core/durable_correlator.h"
#include "src/core/hoard.h"
#include "src/core/hoard_daemon.h"
#include "src/core/snapshot_store.h"
#include "src/observer/sink_chain.h"
#include "src/util/fs.h"
#include "src/util/status.h"
#include "src/util/thread_pool.h"

namespace seer {

struct TenantRouterConfig {
  // Seed parameters for every tenant's correlator (store contents win on
  // restore, as in single-instance recovery).
  SeerParams defaults;
  SnapshotStoreOptions store_options;

  // Shared worker pool size; 0 selects DefaultThreadCount() (SEER_THREADS
  // else hardware concurrency).
  int threads = 0;

  // --- residency budget --------------------------------------------------
  // A tenant is *resident* while its correlator is in memory. When either
  // bound is exceeded after a Tick, the coldest residents (least recently
  // referenced) are evicted until both hold. 0 = unbounded.
  uint64_t max_resident_bytes = 0;
  size_t max_resident_tenants = 0;

  // --- checkpoint scheduler ----------------------------------------------
  // Per-tenant checkpoint period. Each tenant's first due time is offset
  // by a per-tenant phase (tenant id modulo stagger_slots slices of the
  // interval), so a fleet created together does not checkpoint in phase.
  Time checkpoint_interval = 1 * kMicrosPerHour;
  size_t stagger_slots = 16;
  // Background checkpoints allowed in flight at once, across all tenants.
  size_t max_checkpoints_inflight = 2;
  // A tenant whose WAL outgrows this is due regardless of its timer
  // (bounds recovery replay, as in HoardDaemonConfig).
  uint64_t wal_checkpoint_bytes = 4u << 20;

  // --- hoard refills -----------------------------------------------------
  // Per-tenant hoard budget; 0 disables refills entirely (a pure
  // learning/checkpointing server).
  uint64_t hoard_budget_bytes = 0;
  Time hoard_interval = 6 * kMicrosPerHour;
  // Refills run synchronously on Tick; cap how many per call so one Tick
  // never stalls the transport for the whole fleet.
  size_t max_refills_per_tick = 4;
  // Per-file sizes for hoard selection (see HoardManager::SizeFn).
  HoardManager::SizeFn size_of;
};

// Point-in-time view of one tenant (seerctl tenant stats, the bench).
struct TenantStats {
  TenantId tenant = kInvalidTenantId;
  bool resident = false;
  uint64_t references = 0;       // callbacks routed to this tenant
  uint64_t memory_bytes = 0;     // correlator resident bytes; 0 when evicted
  uint64_t generation = 0;       // durable generation (cached across eviction)
  uint64_t files = 0;            // tracked files (cached across eviction)
  uint64_t wal_bytes = 0;
  uint64_t checkpoints = 0;      // harvested, this tenant
  uint64_t evictions = 0;
  uint64_t restores = 0;
  uint64_t refills = 0;
  uint64_t hoard_files = 0;      // size of the last hoard selection
  // Refill cost: wall time of the whole ForceRefill (investigate + cluster
  // + choose), and how much of the last fill the aggregate cache absorbed.
  uint64_t refill_us_total = 0;
  uint64_t last_refill_us = 0;
  uint64_t hoard_dirty_clusters = 0;  // aggregates recomputed, last fill
};

class TenantRouter {
 public:
  TenantRouter(Fs* fs, std::string root, TenantRouterConfig config = {});
  // Best-effort Shutdown(); errors are latched in last_error().
  ~TenantRouter();

  // Tenant t's ingress sink. The address is stable for the router's
  // lifetime — across evictions and restores — so transports bind it
  // once. Creating (or restoring) the tenant's store happens lazily on
  // the first routed callback, not here. kInvalidTenantId never gets a
  // store: its events are dropped with an InvalidArgument latched in
  // last_error().
  ReferenceSink* SinkFor(TenantId tenant);

  // The tenant's live correlator, creating/restoring it if needed.
  StatusOr<Correlator*> CorrelatorFor(TenantId tenant);

  // Control-plane heartbeat; call from the transport's idle loop. Runs
  // the checkpoint scheduler, due hoard refills, and the eviction pass.
  // Returns the first error encountered (the pass still completes).
  Status Tick(Time now);

  // Synchronous checkpoint of one tenant (seal + encode + write + prune
  // before returning). Restores the tenant if evicted.
  Status CheckpointTenant(TenantId tenant);

  // Seal-and-release: checkpoint, then free the tenant's in-memory state.
  // Ok and a no-op when already evicted; NotFound for unknown tenants.
  Status EvictTenant(TenantId tenant);

  // Block until every in-flight background checkpoint completes and is
  // harvested (tests and orderly quiesce; Tick never blocks like this).
  Status DrainCheckpoints();

  // Checkpoint and release every resident tenant. The router stays usable
  // (tenants restore on next reference). Returns the first error.
  Status Shutdown();

  // Tenants this router has seen (resident or evicted), ascending.
  std::vector<TenantId> ListTenants() const;
  StatusOr<TenantStats> Stats(TenantId tenant) const;

  // --- per-tenant parameter overrides -------------------------------------
  // A tenant's SeerParams can be overridden independently of the fleet
  // defaults. The override text (params_io format, parsed over the
  // defaults) is persisted as params.seer in the tenant's store directory
  // — atomically, like every other store artifact — and re-applied on
  // every restore, so it survives eviction and router restart. Setting
  // params on a resident tenant applies them live (max_neighbors stays
  // pinned; see Correlator::OverrideTuningParams).
  Status SetTenantParams(TenantId tenant, const std::string& text);
  // Effective params rendered as params_io text: the live correlator's
  // when resident, else override-over-defaults. NotFound for tenants the
  // router has never seen that also have no store directory.
  StatusOr<std::string> GetTenantParams(TenantId tenant) const;

  // --- per-tenant hoard surfaces ------------------------------------------
  // The tenant's pin set and miss log. Both live outside the evictable
  // slab (they are human-scale and human-entered), are persisted to the
  // store's aux section at checkpoint/eviction, and reload on restore.
  // Creates the tenant entry; nullptr only for kInvalidTenantId.
  HoardManager* HoardFor(TenantId tenant);
  MissLog* MissLogFor(TenantId tenant);

  // True when the tenant exists and its correlator is in memory — the
  // sharded transport's fast-path gate (see the threading note above):
  // callable concurrently under the shared side of the external lock,
  // because residency can only change under the exclusive side.
  bool TenantResident(TenantId tenant) const;

  size_t resident_tenants() const;
  // Sum of resident correlators' MemoryBytes() as of the last Tick or
  // eviction pass (recomputing per call would flush every batcher).
  uint64_t resident_bytes() const { return resident_bytes_; }

  // --- fleet counters ----------------------------------------------------
  uint64_t evictions() const { return evictions_; }
  uint64_t restores() const { return restores_; }
  uint64_t checkpoints_started() const { return checkpoints_started_; }
  uint64_t checkpoints_harvested() const { return checkpoints_harvested_; }
  size_t checkpoints_inflight() const { return inflight_; }
  // Seal stalls (µs) of the most recent kSealStallWindow harvested
  // checkpoints — the only part of a background checkpoint the ingest path
  // waits for. A bounded ring (oldest entries overwritten, order
  // unspecified), so a long-lived server does not accumulate one entry
  // per checkpoint forever; percentile summaries are order-blind anyway.
  static constexpr size_t kSealStallWindow = 4096;
  const std::vector<uint64_t>& seal_stall_micros() const { return seal_stalls_; }

  // First routing/restore error latched by the event path (sink callbacks
  // cannot return Status). Ok when healthy.
  const Status& last_error() const { return last_error_; }

  ThreadPool* pool() { return &pool_; }
  const std::string& root() const { return root_; }

 private:
  struct Tenant {
    TenantId id = kInvalidTenantId;
    // Ingress; address handed out by SinkFor, stable across residency.
    std::unique_ptr<TenantScopedSink> scoped;
    // Resident state: null while evicted.
    std::unique_ptr<DurableCorrelator> durable;
    std::unique_ptr<HoardDaemon> daemon;
    // Survive eviction: pins and misses are tiny and must not be lost
    // when the slab is released.
    HoardManager manager{0};
    MissLog miss_log;
    Time next_checkpoint_due = 0;
    Time last_refill = -1;
    // LRU clock for the eviction pass. Atomic (relaxed) because routed
    // callbacks bump it concurrently from shard threads under the shared
    // external lock; the eviction scan runs exclusive and only needs a
    // monotone-ish ordering, not cross-tenant precision.
    std::atomic<uint64_t> last_touch_seq{0};
    uint64_t memory_bytes = 0;    // as of the last Tick
    // Stats caches that survive eviction (refreshed at Tick, checkpoint,
    // eviction, and restore), so `tenant stats` never has to re-open an
    // evicted store.
    uint64_t durable_generation = 0;
    uint64_t last_files = 0;
    bool aux_loaded = false;  // pins/misses recovered from the store once
    bool checkpoint_inflight = false;
    uint64_t checkpoints = 0;
    uint64_t evictions = 0;
    uint64_t restores = 0;
    uint64_t refills = 0;
    uint64_t refill_us_total = 0;
    uint64_t last_refill_us = 0;
  };

  Tenant* FindTenant(TenantId tenant);
  const Tenant* FindTenant(TenantId tenant) const;
  // Lookup-or-create + ensure resident; nullptr on failure (latched).
  Tenant* ResidentTenant(TenantId tenant);
  // The per-callback route target; latches errors into last_error_.
  ReferenceSink* Route(TenantId tenant);
  Status Restore(Tenant* t);
  Status SettleCheckpoint(Tenant* t);  // join + harvest if in flight
  void HarvestCheckpoint(Tenant* t);   // stats + counters after a finish
  void RecordSealStall(uint64_t micros);
  Status EvictLocked(Tenant* t);
  Time StaggerPhase(TenantId tenant) const;
  void RefreshResidentBytes();
  // Refreshes the eviction-surviving stats caches and rewrites the aux
  // section; called after every successful checkpoint.
  Status PersistTenantMeta(Tenant* t);
  Status EnsureAuxLoaded(Tenant* t);
  std::string ParamsPath(TenantId tenant) const;

  Fs* fs_;
  std::string root_;
  TenantRouterConfig config_;
  ThreadPool pool_;
  std::map<TenantId, Tenant> tenants_;  // ordered: ListTenants is sorted
  std::atomic<uint64_t> touch_seq_{0};
  uint64_t resident_bytes_ = 0;
  size_t inflight_ = 0;
  uint64_t evictions_ = 0;
  uint64_t restores_ = 0;
  uint64_t checkpoints_started_ = 0;
  uint64_t checkpoints_harvested_ = 0;
  std::vector<uint64_t> seal_stalls_;  // ring of size <= kSealStallWindow
  size_t seal_stall_next_ = 0;         // overwrite cursor once full
  Status last_error_;
};

}  // namespace seer

#endif  // SRC_SERVER_TENANT_ROUTER_H_
