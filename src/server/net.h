// Thin POSIX socket layer for the hoard service.
//
// wire.h is pure bytes (fuzzable, no syscalls); this header owns the file
// descriptors. Endpoints are spelled as strings so seerctl flags, the
// bench, and tests all parse the same way:
//
//   "unix:/run/seer.sock"  — UNIX-domain stream socket
//   "/run/seer.sock"       — same (bare paths mean UDS)
//   "tcp:127.0.0.1:7070"   — TCP, numeric IPv4 host
//
// UDS is the primary transport (the service and a laptop's observer share
// a machine, as in the paper's deployment); TCP exists for the fleet
// case. Everything returns Status/StatusOr with errno folded into the
// message — no exceptions, no silent -1s.
#ifndef SRC_SERVER_NET_H_
#define SRC_SERVER_NET_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/util/status.h"

namespace seer {
namespace net {

// Move-only RAII file descriptor.
class OwnedFd {
 public:
  OwnedFd() = default;
  explicit OwnedFd(int fd) : fd_(fd) {}
  ~OwnedFd() { reset(); }
  OwnedFd(OwnedFd&& other) noexcept : fd_(other.release()) {}
  OwnedFd& operator=(OwnedFd&& other) noexcept {
    if (this != &other) {
      reset(other.release());
    }
    return *this;
  }
  OwnedFd(const OwnedFd&) = delete;
  OwnedFd& operator=(const OwnedFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() { return std::exchange(fd_, -1); }
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

struct Endpoint {
  bool tcp = false;
  std::string path;  // UDS socket path
  std::string host;  // TCP numeric IPv4
  uint16_t port = 0;
};

// Parses an endpoint spec (see header comment). UDS paths are checked
// against the sockaddr_un length limit here, not at bind time.
StatusOr<Endpoint> ParseEndpoint(std::string_view spec);

// socket + bind + listen. A stale UDS socket file is unlinked first (the
// previous server is gone; its address should not brick the next one).
StatusOr<OwnedFd> Listen(const Endpoint& endpoint);

// Blocking connect. No retry here — the client library layers
// retry/backoff on top (a refused connection is common at startup).
StatusOr<OwnedFd> Connect(const Endpoint& endpoint);

// accept(); kFailedPrecondition wrapping EAGAIN when nothing is pending
// on a non-blocking listener.
StatusOr<OwnedFd> Accept(int listen_fd);

Status SetNonBlocking(int fd);

// Writes all of `data`, polling for writability on EAGAIN; EPIPE and
// friends surface as kIoError.
Status SendAll(int fd, std::string_view data);

// Gathered write: sends every chunk, in order, as if concatenated —
// one sendmsg per burst instead of one send per response frame. Same
// blocking/EAGAIN/EPIPE behaviour as SendAll. Empty chunks are allowed.
Status WriteVec(int fd, const std::vector<std::string_view>& chunks);

// One read(): bytes read, 0 at EOF. EAGAIN on a non-blocking socket is
// 0 bytes with `*would_block = true`.
StatusOr<size_t> ReadSome(int fd, char* buf, size_t len, bool* would_block);

}  // namespace net
}  // namespace seer

#endif  // SRC_SERVER_NET_H_
