// The hoard service: TenantRouter behind a socket.
//
// PR 6 built the tenant-routed server plane as an in-process library;
// this is its network face. One poll()-driven thread owns a listening
// socket (UDS primarily, TCP for the fleet case), any number of
// client connections, and the router — preserving the router's
// single-threaded control-plane contract by construction: every frame,
// control verb, and Tick runs on the Serve() thread, while the
// parallelism stays in the shared worker pool underneath.
//
// Data plane: kEvents frames (wire.h) carry self-contained binary
// traces tagged with a TenantId channel. Each tenant's events pass
// through that tenant's own Observer — the same filtering pipeline a
// local deployment runs — and into SinkFor(tenant); kNotLocal accesses
// feed the tenant's MissLog. Frames are processed synchronously as they
// are read, so the ingest batcher's backpressure propagates naturally:
// a connection whose tenant is slow to ingest simply stops being read,
// and the kernel socket buffer throttles the sender. A connection that
// accumulates more than conn_buffer_limit undecoded bytes (one frame
// can be up to wire::kMaxFramePayload) is likewise not polled for more
// input until the backlog drains.
//
// Control plane: kRequest frames are decoded, dispatched against the
// router, and answered with a kResponse frame echoing the request id —
// so a client can pipeline requests over one connection. kShutdown
// answers first, then drains: remaining buffered frames are processed,
// connections close, in-flight checkpoints settle, and every resident
// tenant is sealed and checkpointed (router Shutdown) before Serve()
// returns. A malformed frame (bad magic/version/flags, oversized
// length, undecodable payload) closes that connection — framing has no
// resynchronisation point — without disturbing the others.
//
// Tenants already on disk are registered at construction (stats and
// list enumerate them across a server restart); their stores restore
// lazily on first reference, exactly like an eviction.
#ifndef SRC_SERVER_SERVICE_H_
#define SRC_SERVER_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/observer/observer.h"
#include "src/observer/observer_config.h"
#include "src/server/net.h"
#include "src/server/tenant_router.h"
#include "src/server/wire.h"
#include "src/util/fs.h"
#include "src/util/status.h"

namespace seer {

struct HoardServiceConfig {
  TenantRouterConfig router;
  // Per-tenant observer pipeline (filters, frequent-file heuristic).
  ObserverConfig observer;
  // Undecoded bytes a connection may buffer before the service stops
  // reading it (per-connection backpressure; must admit one max frame).
  size_t conn_buffer_limit = wire::kMaxFramePayload + wire::kFrameHeaderSize;
  // poll() timeout — the idle heartbeat driving router Tick cadence.
  int poll_interval_ms = 100;
  // Microsecond clock for Tick; null selects the monotonic clock. Tests
  // inject a fake so checkpoint scheduling is reproducible.
  std::function<Time()> clock;
};

class HoardService {
 public:
  HoardService(Fs* fs, std::string root, HoardServiceConfig config = {});
  ~HoardService();

  HoardService(const HoardService&) = delete;
  HoardService& operator=(const HoardService&) = delete;

  // Binds and listens on the endpoint (net.h spec syntax). Call once,
  // before Serve.
  Status Listen(const std::string& endpoint_spec);

  // Runs the accept/read/dispatch loop until a kShutdown request or
  // RequestStop(), then drains and seals every resident tenant. Returns
  // the first error the loop or the drain latched (Ok on a clean run —
  // per-connection protocol errors are counted, not fatal).
  Status Serve();

  // Thread-safe stop signal (signal handlers, tests). Serve notices at
  // its next poll timeout and drains exactly like a kShutdown verb.
  void RequestStop() { stop_.store(true, std::memory_order_relaxed); }

  // The router is usable (single-threaded) before Serve starts and
  // after it returns — tests inspect tenants directly.
  TenantRouter& router() { return router_; }
  const TenantRouter& router() const { return router_; }

  // --- counters -----------------------------------------------------------
  uint64_t connections_accepted() const { return connections_accepted_; }
  uint64_t frames_received() const { return frames_received_; }
  uint64_t events_ingested() const { return events_ingested_; }
  // Connections dropped for framing or payload decode errors.
  uint64_t protocol_errors() const { return protocol_errors_; }

 private:
  struct Connection {
    net::OwnedFd fd;
    wire::FrameDecoder decoder;
    std::string outbox;  // encoded response frames not yet written
    bool closed = false;
  };

  Time Now() const;
  Observer* ObserverFor(TenantId tenant);
  // Decodes and dispatches every complete frame buffered on `c`.
  void ProcessFrames(Connection* c);
  void HandleFrame(Connection* c, wire::Frame frame);
  wire::ControlResponse Dispatch(const wire::ControlRequest& request);
  void FlushOutbox(Connection* c);

  Fs* fs_;
  HoardServiceConfig config_;
  TenantRouter router_;
  net::OwnedFd listener_;
  std::string uds_path_;  // unlinked on destruction when non-empty
  std::vector<std::unique_ptr<Connection>> connections_;
  // One observer pipeline per tenant: filtering state (frequent files,
  // per-process history) is tenant-local, like everything else.
  std::map<TenantId, std::unique_ptr<Observer>> observers_;
  std::atomic<bool> stop_{false};
  Time last_tick_ = -1;

  uint64_t connections_accepted_ = 0;
  uint64_t frames_received_ = 0;
  uint64_t events_ingested_ = 0;
  uint64_t protocol_errors_ = 0;
};

}  // namespace seer

#endif  // SRC_SERVER_SERVICE_H_
