// The hoard service: TenantRouter behind a socket, served by a sharded
// I/O plane.
//
// PR 6 built the tenant-routed server plane as an in-process library and
// put it behind one poll()-driven thread; PR 8 made the ingest and
// clustering planes underneath scale. This version removes the last
// single-thread funnel — the wire itself — by sharding connections over
// N I/O worker threads (io_threads, default SEER_THREADS):
//
//   * Shard 0 is the Serve() thread. It owns the listening socket, the
//     router's control plane (every control verb and Tick), and its own
//     share of connections. Shards 1..N-1 are worker threads, each with
//     a private poll set.
//   * A connection is assigned to a shard at accept time and never
//     migrates, so the frames of one connection are always processed in
//     arrival order by one thread — the ordering contract the wire
//     format's per-frame dictionaries assume, and the reason per-tenant
//     determinism survives multi-threaded I/O (see DESIGN.md §16).
//   * Control verbs decoded on a worker shard are posted to shard 0's
//     mailbox (a self-pipe wakes its poll) and executed there; the
//     worker blocks for the response and writes it to its own
//     connection, preserving per-connection response ordering. Router
//     Tick() likewise runs only on shard 0. The TenantRouter's
//     single-threaded control plane is therefore preserved by
//     construction — with one audited exception, documented in
//     tenant_router.h and enforced here by a plane-wide shared_mutex:
//     event delivery to an already-resident tenant runs under the
//     shared side (concurrently across shards, serialized per tenant by
//     a lane mutex), while anything that can create, restore, or evict
//     a tenant — first delivery, control verbs, Tick, shutdown — takes
//     the exclusive side.
//
// Data plane: kEvents frames are decoded near-zero-copy. A frame's
// payload is parsed straight out of the connection's read buffer
// (FrameDecoder::NextView) into the shard's reusable wire::EventArena —
// no per-frame payload string, no per-event path strings; each distinct
// path is interned into GlobalPaths() once, at its dictionary
// definition. Decoded events pass through the tenant's own Observer and
// into SinkFor(tenant), whose DurableCorrelator coalesces them through
// its IngestBatcher so wire ingest rides the stripe-sharded relation
// fold. Responses are batched per read burst and flushed with one
// gathered write (net::WriteVec).
//
// Backpressure is unchanged: frames dispatch synchronously on the owning
// shard, so a slow tenant stalls only that shard's read loop for that
// connection, and a connection holding more than conn_buffer_limit
// undecoded bytes is not polled for more input until the backlog drains.
//
// Control plane: kRequest frames are decoded, dispatched against the
// router, and answered with a kResponse frame echoing the request id —
// so a client can pipeline requests over one connection. kShutdown
// answers first, then drains: every shard finishes the frames already
// buffered on its connections, flushes responses, and closes; in-flight
// checkpoints settle, and every resident tenant is sealed and
// checkpointed (router Shutdown) before Serve() returns. A malformed
// frame (bad magic/version/flags, oversized length, undecodable payload)
// closes that connection — framing has no resynchronisation point —
// without disturbing the others.
//
// Tenants already on disk are registered at construction (stats and
// list enumerate them across a server restart); their stores restore
// lazily on first reference, exactly like an eviction.
#ifndef SRC_SERVER_SERVICE_H_
#define SRC_SERVER_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/observer/observer.h"
#include "src/observer/observer_config.h"
#include "src/server/net.h"
#include "src/server/tenant_router.h"
#include "src/server/wire.h"
#include "src/util/fs.h"
#include "src/util/status.h"

namespace seer {

struct HoardServiceConfig {
  TenantRouterConfig router;
  // Per-tenant observer pipeline (filters, frequent-file heuristic).
  ObserverConfig observer;
  // Undecoded bytes a connection may buffer before the service stops
  // reading it (per-connection backpressure; must admit one max frame).
  size_t conn_buffer_limit = wire::kMaxFramePayload + wire::kFrameHeaderSize;
  // poll() timeout — the idle heartbeat driving router Tick cadence and
  // the stop-flag observation latency on every shard.
  int poll_interval_ms = 100;
  // Microsecond clock for Tick; null selects the monotonic clock. Tests
  // inject a fake so checkpoint scheduling is reproducible.
  std::function<Time()> clock;
  // I/O shards: 1 designated thread (Serve() itself) + io_threads-1
  // workers. 0 selects DefaultThreadCount() (SEER_THREADS else hardware
  // concurrency); values are clamped to >= 1.
  int io_threads = 0;
  // Test support: when true, every kEvents delivery appends a
  // MergeRecord to its tenant's merge log, so a test can replay the
  // exact serialization order the server chose for multi-connection
  // tenants (see MergeLogFor).
  bool record_merge_log = false;
};

class HoardService {
 public:
  HoardService(Fs* fs, std::string root, HoardServiceConfig config = {});
  ~HoardService();

  HoardService(const HoardService&) = delete;
  HoardService& operator=(const HoardService&) = delete;

  // Binds and listens on the endpoint (net.h spec syntax). Call once,
  // before Serve.
  Status Listen(const std::string& endpoint_spec);

  // Runs the sharded accept/read/dispatch plane until a kShutdown
  // request or RequestStop(), then drains and seals every resident
  // tenant. Returns the first error the loop or the drain latched (Ok
  // on a clean run — per-connection protocol errors are counted, not
  // fatal).
  Status Serve();

  // Thread-safe stop signal (signal handlers, tests). Every shard
  // notices within poll_interval_ms and drains exactly like a kShutdown
  // verb.
  void RequestStop() { stop_.store(true, std::memory_order_relaxed); }

  // The router is usable (single-threaded) before Serve starts and
  // after it returns — tests inspect tenants directly.
  TenantRouter& router() { return router_; }
  const TenantRouter& router() const { return router_; }

  // The resolved shard count Serve() will use.
  int io_threads() const { return io_threads_; }

  // One kEvents delivery: `conn` is the connection's accept ordinal
  // (1-based, assigned in accept order), `first_seq` the first decoded
  // event's sequence number, `count` the frame's event count.
  struct MergeRecord {
    uint64_t conn = 0;
    uint64_t first_seq = 0;
    uint32_t count = 0;
  };
  // The tenant's delivery order (requires record_merge_log). Meant for
  // inspection after Serve() returns; safe any time.
  std::vector<MergeRecord> MergeLogFor(TenantId tenant) const;

  // --- counters (atomic: shards update them concurrently) -----------------
  uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }
  uint64_t frames_received() const { return frames_received_.load(std::memory_order_relaxed); }
  uint64_t events_ingested() const { return events_ingested_.load(std::memory_order_relaxed); }
  // Connections dropped for framing or payload decode errors.
  uint64_t protocol_errors() const { return protocol_errors_.load(std::memory_order_relaxed); }

 private:
  struct Connection {
    net::OwnedFd fd;
    uint64_t id = 0;  // accept ordinal, 1-based
    wire::FrameDecoder decoder;
    // Encoded response frames not yet written; flushed with one
    // gathered write per read burst.
    std::vector<std::string> outbox;
    bool closed = false;
  };

  // Per-tenant serving state outside the router: the observer pipeline
  // and the merge log. Lanes are created under the exclusive plane lock
  // and never destroyed, so a shard holding the shared lock may touch
  // any lane it finds — serialized per tenant by the lane mutex.
  struct TenantLane {
    mutable std::mutex mu;
    std::unique_ptr<Observer> observer;
    std::vector<MergeRecord> merge_log;
  };

  // One I/O shard. Shard 0 is the Serve() thread (listener + control
  // plane + its share of connections); the rest are workers.
  struct Shard {
    size_t index = 0;
    std::vector<std::unique_ptr<Connection>> connections;
    wire::EventArena arena;  // reused for every kEvents frame this shard decodes
    std::vector<char> read_buf;

    // Mailbox: connections handed over at accept, and (shard 0 only)
    // control jobs posted by workers. The wake pipe sits in the shard's
    // poll set so posts interrupt its poll immediately.
    std::mutex mail_mu;
    std::vector<std::unique_ptr<Connection>> incoming;
    std::vector<std::function<void()>> jobs;
    net::OwnedFd wake_r;
    net::OwnedFd wake_w;

    std::thread thread;  // joinable for workers only
  };

  Time Now() const;

  // Lane lookup under the shared plane lock (nullptr when absent) and
  // lookup-or-create under the exclusive lock. EnsureLane also registers
  // the tenant with the router (SinkFor/MissLogFor), wiring the
  // observer's sink exactly as a fresh single-tenant deployment would.
  TenantLane* FindLane(TenantId tenant);
  TenantLane* EnsureLane(TenantId tenant);

  // Decodes and dispatches every complete frame buffered on `c`;
  // flushes the outbox afterwards.
  void ProcessFrames(Shard* shard, Connection* c);
  // One kEvents frame. False on protocol error (caller closes `c`).
  bool DeliverEvents(Shard* shard, Connection* c, TenantId tenant, std::string_view payload);
  // Events -> observer under the lane mutex (plane lock already held).
  void DeliverToLane(TenantLane* lane, Connection* c, Shard* shard);
  // Control verb execution; takes the exclusive plane lock. Runs on
  // shard 0 (or inline when io_threads == 1).
  wire::ControlResponse Dispatch(const wire::ControlRequest& request);
  void FlushOutbox(Connection* c);

  // Shard machinery.
  void PostJob(std::function<void()> job);  // to shard 0, with wake
  void Wake(Shard* shard);
  void DrainWakePipe(Shard* shard);
  // Adopts mailed connections; shard 0 also runs mailed control jobs.
  void DrainMailbox(Shard* shard);
  // One poll + read/dispatch pass over the shard's connections (the
  // common body of the shard-0 loop and the worker loop); `extra_fd`
  // adds the listener for shard 0 and reports its readiness.
  bool PollAndService(Shard* shard, int extra_fd);
  void ReadBurst(Shard* shard, Connection* c);
  void WorkerLoop(Shard* shard);
  // End-of-serve: finish buffered frames, flush, close.
  void DrainShardConnections(Shard* shard);

  Fs* fs_;
  HoardServiceConfig config_;
  TenantRouter router_;
  int io_threads_ = 1;
  net::OwnedFd listener_;
  std::string uds_path_;  // unlinked on destruction when non-empty

  // Plane lock: shared for event delivery to resident tenants, exclusive
  // for anything that can create/restore/evict tenants or read
  // cross-tenant state (control verbs, Tick, shutdown). Lock order:
  // plane_mu_ before any TenantLane::mu.
  mutable std::shared_mutex plane_mu_;
  std::map<TenantId, std::unique_ptr<TenantLane>> lanes_;

  std::vector<std::unique_ptr<Shard>> shards_;
  uint64_t next_shard_ = 0;     // round-robin accept assignment (shard 0 only)
  uint64_t next_conn_id_ = 0;   // accept ordinals (shard 0 only)
  std::atomic<int> workers_live_{0};

  std::atomic<bool> stop_{false};
  Time last_tick_ = -1;

  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> frames_received_{0};
  std::atomic<uint64_t> events_ingested_{0};
  std::atomic<uint64_t> protocol_errors_{0};
};

}  // namespace seer

#endif  // SRC_SERVER_SERVICE_H_
