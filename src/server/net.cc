#include "src/server/net.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <sys/un.h>
#include <unistd.h>

#include <string>
#include <vector>

namespace seer {
namespace net {

namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

StatusOr<OwnedFd> NewSocket(int domain) {
  const int fd = ::socket(domain, SOCK_STREAM, 0);
  if (fd < 0) {
    return Errno("socket");
  }
  return OwnedFd(fd);
}

Status FillUnixAddr(const std::string& path, sockaddr_un* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr->sun_path)) {
    return Status::InvalidArgument("socket path too long for sockaddr_un: " + path);
  }
  std::memcpy(addr->sun_path, path.data(), path.size());
  return Status::Ok();
}

// Small control responses must not sit behind Nagle waiting for an ACK;
// the framing layer already batches, so delayed coalescing buys nothing.
// Best-effort: on a UNIX-domain socket the option does not exist and the
// failure (ENOTSUP/EOPNOTSUPP) is harmless.
void DisableNagle(int fd) {
  const int on = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &on, sizeof(on));
}

Status FillTcpAddr(const Endpoint& endpoint, sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(endpoint.port);
  if (::inet_pton(AF_INET, endpoint.host.c_str(), &addr->sin_addr) != 1) {
    return Status::InvalidArgument("not a numeric IPv4 address: " + endpoint.host);
  }
  return Status::Ok();
}

}  // namespace

void OwnedFd::reset(int fd) {
  if (fd_ >= 0) {
    ::close(fd_);
  }
  fd_ = fd;
}

StatusOr<Endpoint> ParseEndpoint(std::string_view spec) {
  Endpoint endpoint;
  if (spec.rfind("unix:", 0) == 0) {
    spec.remove_prefix(5);
    endpoint.path = std::string(spec);
  } else if (spec.rfind("tcp:", 0) == 0) {
    spec.remove_prefix(4);
    const size_t colon = spec.rfind(':');
    if (colon == std::string_view::npos || colon == 0 || colon + 1 == spec.size()) {
      return Status::InvalidArgument("tcp endpoint must be tcp:host:port, got tcp:" +
                                     std::string(spec));
    }
    endpoint.tcp = true;
    endpoint.host = std::string(spec.substr(0, colon));
    uint32_t port = 0;
    for (const char c : spec.substr(colon + 1)) {
      if (c < '0' || c > '9') {
        return Status::InvalidArgument("bad tcp port in endpoint");
      }
      port = port * 10 + static_cast<uint32_t>(c - '0');
      if (port > 65535) {
        return Status::InvalidArgument("tcp port out of range");
      }
    }
    if (port == 0) {
      return Status::InvalidArgument("tcp port out of range");
    }
    endpoint.port = static_cast<uint16_t>(port);
    return endpoint;
  } else {
    endpoint.path = std::string(spec);
  }
  if (endpoint.path.empty()) {
    return Status::InvalidArgument("empty socket path");
  }
  sockaddr_un probe;
  SEER_RETURN_IF_ERROR(FillUnixAddr(endpoint.path, &probe));
  return endpoint;
}

StatusOr<OwnedFd> Listen(const Endpoint& endpoint) {
  if (endpoint.tcp) {
    SEER_ASSIGN_OR_RETURN(OwnedFd fd, NewSocket(AF_INET));
    const int on = 1;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &on, sizeof(on));
    sockaddr_in addr;
    SEER_RETURN_IF_ERROR(FillTcpAddr(endpoint, &addr));
    if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      return Errno("bind " + endpoint.host + ":" + std::to_string(endpoint.port));
    }
    if (::listen(fd.get(), SOMAXCONN) != 0) {
      return Errno("listen");
    }
    return fd;
  }
  SEER_ASSIGN_OR_RETURN(OwnedFd fd, NewSocket(AF_UNIX));
  sockaddr_un addr;
  SEER_RETURN_IF_ERROR(FillUnixAddr(endpoint.path, &addr));
  ::unlink(endpoint.path.c_str());  // a stale socket file from a dead server
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Errno("bind " + endpoint.path);
  }
  if (::listen(fd.get(), SOMAXCONN) != 0) {
    return Errno("listen " + endpoint.path);
  }
  return fd;
}

StatusOr<OwnedFd> Connect(const Endpoint& endpoint) {
  if (endpoint.tcp) {
    SEER_ASSIGN_OR_RETURN(OwnedFd fd, NewSocket(AF_INET));
    sockaddr_in addr;
    SEER_RETURN_IF_ERROR(FillTcpAddr(endpoint, &addr));
    if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      return Errno("connect " + endpoint.host + ":" + std::to_string(endpoint.port));
    }
    DisableNagle(fd.get());
    return fd;
  }
  SEER_ASSIGN_OR_RETURN(OwnedFd fd, NewSocket(AF_UNIX));
  sockaddr_un addr;
  SEER_RETURN_IF_ERROR(FillUnixAddr(endpoint.path, &addr));
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Errno("connect " + endpoint.path);
  }
  return fd;
}

StatusOr<OwnedFd> Accept(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      DisableNagle(fd);
      return OwnedFd(fd);
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::FailedPrecondition("accept: no pending connection");
    }
    return Errno("accept");
  }
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl O_NONBLOCK");
  }
  return Status::Ok();
}

Status SendAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      pollfd pfd{fd, POLLOUT, 0};
      if (::poll(&pfd, 1, -1) < 0 && errno != EINTR) {
        return Errno("poll POLLOUT");
      }
      continue;
    }
    return Errno("send");
  }
  return Status::Ok();
}

Status WriteVec(int fd, const std::vector<std::string_view>& chunks) {
  // Bound the iovec array per sendmsg; a burst larger than this simply
  // takes several syscalls, which is still far fewer than one per chunk.
  constexpr size_t kMaxIov = 64;
  iovec iov[kMaxIov];
  size_t next = 0;        // first chunk not yet fully sent
  size_t offset = 0;      // bytes of chunks[next] already sent
  while (next < chunks.size()) {
    size_t n_iov = 0;
    for (size_t i = next; i < chunks.size() && n_iov < kMaxIov; ++i) {
      const std::string_view chunk = chunks[i];
      const size_t skip = i == next ? offset : 0;
      if (chunk.size() == skip) {
        continue;  // empty (or fully-sent head) chunk
      }
      iov[n_iov].iov_base = const_cast<char*>(chunk.data() + skip);
      iov[n_iov].iov_len = chunk.size() - skip;
      ++n_iov;
    }
    if (n_iov == 0) {
      break;  // everything left was empty
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = n_iov;
    const ssize_t sent = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        pollfd pfd{fd, POLLOUT, 0};
        if (::poll(&pfd, 1, -1) < 0 && errno != EINTR) {
          return Errno("poll POLLOUT");
        }
        continue;
      }
      return Errno("sendmsg");
    }
    // Advance (next, offset) past the bytes the kernel took.
    size_t remaining = static_cast<size_t>(sent);
    while (next < chunks.size()) {
      const size_t left = chunks[next].size() - offset;
      if (remaining < left) {
        offset += remaining;
        break;
      }
      remaining -= left;
      ++next;
      offset = 0;
    }
  }
  return Status::Ok();
}

StatusOr<size_t> ReadSome(int fd, char* buf, size_t len, bool* would_block) {
  *would_block = false;
  for (;;) {
    const ssize_t n = ::read(fd, buf, len);
    if (n >= 0) {
      return static_cast<size_t>(n);
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      *would_block = true;
      return static_cast<size_t>(0);
    }
    return Errno("read");
  }
}

}  // namespace net
}  // namespace seer
