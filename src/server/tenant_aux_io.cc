#include "src/server/tenant_aux_io.h"

#include <charconv>
#include <sstream>

#include "src/trace/trace_io.h"

namespace seer {

namespace {

constexpr char kAuxHeader[] = "# seer tenant aux v1";
constexpr char kAuxFileName[] = "aux.seer";
constexpr char kAuxTmpName[] = "aux.seer.tmp";

template <typename T>
bool ParseInt(std::string_view s, T* out) {
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

std::vector<std::string_view> SplitFields(std::string_view line) {
  std::vector<std::string_view> fields;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && line[i] == ' ') {
      ++i;
    }
    const size_t start = i;
    while (i < line.size() && line[i] != ' ') {
      ++i;
    }
    if (i > start) {
      fields.push_back(line.substr(start, i - start));
    }
  }
  return fields;
}

Status BadLine(size_t line_no, const std::string& why) {
  return Status::InvalidArgument("tenant aux line " + std::to_string(line_no) + ": " + why);
}

}  // namespace

std::string FormatTenantAux(const HoardManager& manager, const MissLog& miss_log) {
  std::ostringstream out;
  out << kAuxHeader << '\n';
  for (const PathId pin : manager.pinned()) {
    out << "pin " << EscapePath(GlobalPaths().PathOf(pin)) << '\n';
  }
  for (const PathId path : miss_log.pending_hoard()) {
    out << "pending " << EscapePath(GlobalPaths().PathOf(path)) << '\n';
  }
  for (const MissRecord& rec : miss_log.records()) {
    out << "miss " << rec.time << ' ' << static_cast<int>(rec.severity) << ' '
        << (rec.automatic ? 'a' : 'm') << ' ' << EscapePath(GlobalPaths().PathOf(rec.path))
        << '\n';
  }
  return out.str();
}

StatusOr<TenantAuxState> ParseTenantAux(std::string_view text) {
  TenantAuxState state;
  std::istringstream in{std::string(text)};
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') {
      continue;
    }
    const auto fields = SplitFields(line);
    if (fields.empty()) {
      continue;
    }
    if (fields[0] == "pin" || fields[0] == "pending") {
      if (fields.size() != 2) {
        return BadLine(line_no, "expected 2 fields");
      }
      const PathId id = GlobalPaths().Intern(UnescapePath(fields[1]));
      (fields[0] == "pin" ? state.pins : state.pending_hoard).insert(id);
      continue;
    }
    if (fields[0] == "miss") {
      if (fields.size() != 5) {
        return BadLine(line_no, "expected 5 fields");
      }
      MissRecord rec;
      int severity = -1;
      if (!ParseInt(fields[1], &rec.time)) {
        return BadLine(line_no, "bad time field");
      }
      if (!ParseInt(fields[2], &severity) || severity < 0 || severity > 4) {
        return BadLine(line_no, "bad severity field");
      }
      if (fields[3] != "a" && fields[3] != "m") {
        return BadLine(line_no, "bad automatic flag");
      }
      rec.severity = static_cast<MissSeverity>(severity);
      rec.automatic = fields[3] == "a";
      rec.path = GlobalPaths().Intern(UnescapePath(fields[4]));
      state.miss_records.push_back(rec);
      continue;
    }
    return BadLine(line_no, "unknown record '" + std::string(fields[0]) + "'");
  }
  return state;
}

Status WriteTenantAux(Fs* fs, const std::string& dir, const HoardManager& manager,
                      const MissLog& miss_log) {
  const std::string path = dir + "/" + kAuxFileName;
  if (manager.pinned().empty() && miss_log.pending_hoard().empty() &&
      miss_log.records().empty()) {
    if (fs->Exists(path)) {
      SEER_RETURN_IF_ERROR(fs->RemoveFile(path));
      SEER_RETURN_IF_ERROR(fs->SyncDir(dir));
    }
    return Status::Ok();
  }
  const std::string tmp = dir + "/" + kAuxTmpName;
  SEER_RETURN_IF_ERROR(fs->WriteFile(tmp, FormatTenantAux(manager, miss_log)));
  SEER_RETURN_IF_ERROR(fs->SyncFile(tmp));
  SEER_RETURN_IF_ERROR(fs->RenameFile(tmp, path));
  return fs->SyncDir(dir);
}

StatusOr<TenantAuxState> LoadTenantAux(Fs* fs, const std::string& dir) {
  const std::string path = dir + "/" + kAuxFileName;
  if (!fs->Exists(path)) {
    return TenantAuxState{};
  }
  SEER_ASSIGN_OR_RETURN(const std::string text, fs->ReadFile(path));
  return ParseTenantAux(text);
}

}  // namespace seer
