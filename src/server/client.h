// seer::client — the hoard service's client library.
//
// One class speaks both planes of the wire protocol (wire.h) over one
// connection: StreamEvents batches trace events into kEvents frames, and
// the typed control calls (Ping/TenantList/.../Shutdown) wrap the
// request/response protocol so remote errors surface as ordinary Status
// values — `client.Checkpoint(7)` fails exactly like the local
// `router.CheckpointTenant(7)` would, message and code intact.
//
// Connect() retries with linear backoff (servers are commonly a beat
// behind their clients at startup); Call() enforces a response deadline
// so a hung server cannot wedge seerctl. The class is deliberately
// synchronous and single-threaded — its consumers (seerctl, the bench,
// tests) want a blocking RPC surface, and pipelining is the server's
// concern, not the caller's.
#ifndef SRC_SERVER_CLIENT_H_
#define SRC_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/server/net.h"
#include "src/server/tenant_router.h"
#include "src/server/wire.h"
#include "src/trace/event.h"
#include "src/util/status.h"

namespace seer {

struct SeerClientOptions {
  // Connection attempts before giving up, retry_delay_ms apart.
  int connect_attempts = 20;
  int retry_delay_ms = 50;
  // Deadline for one control response (kIoError past it).
  int response_timeout_ms = 30'000;
  // Event-frame payload target: a frame is cut once its binary-trace
  // payload reaches this size. Must leave headroom under
  // wire::kMaxFramePayload for the event that crosses the line.
  size_t batch_bytes = 256u << 10;
  // Event frames StreamEvents may leave in flight before inserting a
  // Ping barrier (client-side flow control for very long streams, so an
  // unbounded burst cannot outrun the server by more than k frames).
  // 0 = unlimited fire-and-forget, the historical behaviour: delivery
  // is confirmed by the caller's next control call. Per-tenant delivery
  // order is identical either way — frames travel the same connection
  // in order; the barrier only paces them.
  size_t pipeline_depth = 0;
};

class SeerClient {
 public:
  // Connects to a net.h endpoint spec ("unix:/run/seer.sock",
  // "tcp:127.0.0.1:7070", or a bare UDS path).
  static StatusOr<SeerClient> Connect(const std::string& endpoint_spec,
                                      SeerClientOptions options = {});

  SeerClient(SeerClient&&) = default;
  SeerClient& operator=(SeerClient&&) = default;

  // Streams events as tenant `tenant`'s trace, batched into self-contained
  // kEvents frames. Fire-and-forget: delivery is confirmed by the next
  // control call on this connection (frames are processed in order).
  Status StreamEvents(TenantId tenant, const std::vector<TraceEvent>& events);

  // One control round-trip. The returned response's code may be non-OK
  // (server-side failure); transport failures are this StatusOr's status.
  StatusOr<wire::ControlResponse> Call(const wire::ControlRequest& request);

  // --- typed control calls (server-side failures fold into the Status) ----
  Status Ping();
  StatusOr<std::vector<TenantId>> TenantList();
  // Stats for one tenant, or for every tenant via kInvalidTenantId.
  StatusOr<std::vector<TenantStats>> Stats(TenantId tenant = kInvalidTenantId);
  Status Evict(TenantId tenant);
  Status Checkpoint(TenantId tenant);
  StatusOr<std::string> ParamsGet(TenantId tenant);
  Status ParamsSet(TenantId tenant, const std::string& text);
  // Asks the server to drain and exit; returns once the server has
  // acknowledged (sealing happens after the ack, before its Serve() returns).
  Status Shutdown();

 private:
  SeerClient(net::OwnedFd fd, SeerClientOptions options)
      : fd_(std::move(fd)), options_(options) {}

  // Call() minus the response decode, shared by the typed helpers.
  StatusOr<wire::ControlResponse> CallVerb(wire::ControlVerb verb, TenantId tenant,
                                           std::string text = {});

  net::OwnedFd fd_;
  SeerClientOptions options_;
  wire::FrameDecoder decoder_;
  uint32_t next_request_id_ = 1;
  // Encode scratch reused across StreamEvents batches: the payload of
  // the frame being built, cleared (capacity kept) per frame.
  std::string scratch_;
};

}  // namespace seer

#endif  // SRC_SERVER_CLIENT_H_
