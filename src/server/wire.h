// The hoard service wire format: one framed API for trace ingest and
// control, shared byte-for-byte by the server (service.h) and the client
// library (client.h) so the two can never drift.
//
// Everything on a connection is a length-prefixed frame:
//
//   offset  size  field
//        0     4  magic "SERV" (little-endian u32 0x56524553)
//        4     1  protocol version (kProtocolVersion)
//        5     1  frame type (FrameType)
//        6     2  flags, must be zero (reserved)
//        8     4  channel: TenantId for kEvents, request id otherwise
//       12     4  payload length, <= kMaxFramePayload
//       16     …  payload
//
// kEvents payloads are self-contained binary traces (binary_trace.h,
// including the "SEERBT1\n" magic): each frame re-opens its own path
// dictionary, so a frame decodes without any cross-frame state and a lost
// or reordered connection can never corrupt a later one. The dictionary
// resets cost a little redundancy per frame; senders amortise it by
// batching many events per frame (client.h batches by payload size).
//
// Control requests and responses are ByteWriter-packed structs carrying a
// verb, a tenant, and text; responses carry a StatusCode + message — the
// same error surface as the persistence layer, so a remote failure and a
// local one look identical to callers (Status in, Status out).
//
// FrameDecoder is incremental: feed it whatever the socket produced, get
// back complete frames. "Not enough bytes yet" is an empty optional, not
// an error; actual garbage (bad magic, bad version, oversized length)
// latches a typed error, after which the connection is unrecoverable —
// framing is by length prefix, so there is no resynchronisation point.
#ifndef SRC_SERVER_WIRE_H_
#define SRC_SERVER_WIRE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/server/tenant_router.h"
#include "src/trace/event.h"
#include "src/util/status.h"

namespace seer {
namespace wire {

constexpr uint32_t kFrameMagic = 0x56524553;  // "SERV", little-endian
constexpr uint8_t kProtocolVersion = 1;
constexpr size_t kFrameHeaderSize = 16;
// Cap on a single frame's payload; a length prefix beyond this is treated
// as corruption, bounding what one malformed client can make us buffer.
constexpr uint32_t kMaxFramePayload = 4u << 20;

enum class FrameType : uint8_t {
  kEvents = 1,    // channel = TenantId, payload = binary trace
  kRequest = 2,   // channel = request id, payload = ControlRequest
  kResponse = 3,  // channel = request id, payload = ControlResponse
};

struct Frame {
  FrameType type = FrameType::kEvents;
  uint32_t channel = 0;
  std::string payload;
};

// A frame whose payload still lives in the decoder's read buffer: the
// server's zero-copy ingest path. The view is valid until the next
// Append() on the producing decoder — consume it before reading more
// bytes off the socket.
struct FrameView {
  FrameType type = FrameType::kEvents;
  uint32_t channel = 0;
  std::string_view payload;
};

// Header + payload, ready to write to a socket.
std::string EncodeFrame(FrameType type, uint32_t channel, std::string_view payload);

// Incremental frame parser over a connection's byte stream.
class FrameDecoder {
 public:
  void Append(std::string_view bytes) {
    // Compact before growing, never after a frame is handed out: any
    // FrameView from NextView() stays valid until this call, which is
    // the natural consume-then-read boundary of the serve loop.
    if (pos_ > 4096 && pos_ >= buffer_.size() / 2) {
      buffer_.erase(0, pos_);
      pos_ = 0;
    }
    buffer_.append(bytes.data(), bytes.size());
  }

  // A complete frame; an empty optional when more bytes are needed; or a
  // latched typed error once the stream is malformed (bad magic/version/
  // type, nonzero flags, oversized length).
  StatusOr<std::optional<Frame>> Next();

  // Like Next(), but the payload is a view into the decoder's buffer —
  // no copy. Valid until the next Append(); Next() and NextView() may be
  // mixed freely on one decoder (they share the same cursor).
  StatusOr<std::optional<FrameView>> NextView();

  // Bytes buffered but not yet consumed by a returned frame.
  size_t buffered() const { return buffer_.size() - pos_; }
  // True when a connection close here is clean (no partial frame). The
  // caller maps EOF at a non-boundary to kDataLoss (mid-frame disconnect).
  bool AtFrameBoundary() const { return status_.ok() && buffered() == 0; }

  const Status& status() const { return status_; }

 private:
  // Shared header scan: validates and fills the header fields when a
  // complete frame is buffered (*complete = true), reports "need more
  // bytes" via *complete = false, or latches and returns a typed error.
  Status Scan(FrameType* type, uint32_t* channel, uint32_t* length, bool* complete);

  std::string buffer_;
  size_t pos_ = 0;  // consumed prefix; compacted as bytes arrive
  Status status_;
};

// --- event frames -------------------------------------------------------------

// A self-contained binary trace (with header) holding `events`.
std::string EncodeEvents(const std::vector<TraceEvent>& events);

// Decodes an event payload. A payload that ends mid-event is kDataLoss
// (a torn frame), exactly like a crash-truncated trace file.
StatusOr<std::vector<TraceEvent>> DecodeEvents(std::string_view payload);

// Zero-copy kEvents decoder: parses a self-contained binary trace payload
// straight out of the frame bytes into InternedEvents, with no
// istringstream, no per-event path strings, and no per-frame vectors —
// storage is reused across Decode() calls, so steady-state decoding of
// same-shaped frames allocates nothing. Each dictionary entry is interned
// into GlobalPaths() exactly once, at its definition; events carry the
// resulting PathIds.
//
// The error surface is byte-for-byte the same as BinaryTraceReader (and
// therefore DecodeEvents): kDataLoss naming the field for torn or corrupt
// payloads, kInvalidArgument for a bad magic. A failed Decode() leaves
// events() holding whatever decoded before the failure; callers treating
// the payload as atomic (the server does) must ignore it on error.
class EventArena {
 public:
  Status Decode(std::string_view payload);

  const std::vector<InternedEvent>& events() const { return events_; }

 private:
  Status GetVarint(const char* field, uint64_t* value);
  Status GetZigzag(const char* field, int64_t* value);
  Status GetPath(const char* field, PathId* out);

  // Cursor over the payload being decoded; meaningful only inside Decode.
  std::string_view data_;
  size_t pos_ = 0;
  uint64_t last_seq_ = 0;
  Time last_time_ = 0;
  size_t events_read_ = 0;

  // Reused across frames; clear() keeps capacity.
  std::vector<InternedEvent> events_;
  std::vector<PathId> dict_;
};

// --- control protocol ---------------------------------------------------------

enum class ControlVerb : uint8_t {
  kPing = 1,
  kTenantList = 2,
  kTenantStats = 3,  // tenant = kInvalidTenantId means "all tenants"
  kTenantEvict = 4,
  kTenantCheckpoint = 5,
  kParamsGet = 6,
  kParamsSet = 7,  // text = params file body (params_io format)
  kShutdown = 8,
};

std::string_view ControlVerbName(ControlVerb verb);

struct ControlRequest {
  ControlVerb verb = ControlVerb::kPing;
  TenantId tenant = kInvalidTenantId;
  std::string text;  // kParamsSet: the params file body
};

struct ControlResponse {
  StatusCode code = StatusCode::kOk;
  std::string message;
  ControlVerb verb = ControlVerb::kPing;  // echo of the request verb
  std::vector<TenantId> tenants;          // kTenantList
  std::vector<TenantStats> stats;         // kTenantStats
  std::string text;                       // kParamsGet: params file body

  // The response's code+message as a Status (Ok for kOk).
  Status ToStatus() const;
};

std::string EncodeControlRequest(const ControlRequest& request);
StatusOr<ControlRequest> DecodeControlRequest(std::string_view payload);

std::string EncodeControlResponse(const ControlResponse& response);
StatusOr<ControlResponse> DecodeControlResponse(std::string_view payload);

}  // namespace wire
}  // namespace seer

#endif  // SRC_SERVER_WIRE_H_
