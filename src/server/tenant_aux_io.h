// Per-tenant auxiliary durability: pins and the miss log.
//
// The snapshot store persists what the correlator *learned*; it says
// nothing about what the user *told us* — hand-pinned files (Section 2)
// and the hoard-miss reports of Section 4.4. PR 6 kept those in router
// memory across evictions, which loses them on restart: exactly the data
// a user is angriest to lose, since each record is a human action or a
// felt failure. This module folds them into the tenant store as a small
// text section, written through the same atomic temp+fsync+rename
// protocol as snapshots and loaded on tenant restore.
//
// Format (one record per line, '#' comments, paths %-escaped as in
// trace_io.h):
//
//   # seer tenant aux v1
//   pin <path>
//   pending <path>                      force-hoard at next reconnection
//   miss <time> <severity> <a|m> <path>
//
// The file is tiny (pins and misses are human-scale), so it is rewritten
// whole at each checkpoint/eviction rather than journaled.
#ifndef SRC_SERVER_TENANT_AUX_IO_H_
#define SRC_SERVER_TENANT_AUX_IO_H_

#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/hoard.h"
#include "src/util/fs.h"
#include "src/util/status.h"

namespace seer {

struct TenantAuxState {
  std::set<PathId> pins;
  std::vector<MissRecord> miss_records;
  std::set<PathId> pending_hoard;

  bool empty() const {
    return pins.empty() && miss_records.empty() && pending_hoard.empty();
  }
};

std::string FormatTenantAux(const HoardManager& manager, const MissLog& miss_log);

// kInvalidArgument naming the bad line for malformed input.
StatusOr<TenantAuxState> ParseTenantAux(std::string_view text);

// Atomically (re)writes the aux file in store directory `dir`. An empty
// state removes the file instead, so a tenant that never pinned or
// missed carries no extra artifact.
Status WriteTenantAux(Fs* fs, const std::string& dir, const HoardManager& manager,
                      const MissLog& miss_log);

// Loads the aux file; a missing file is an empty state, not an error.
StatusOr<TenantAuxState> LoadTenantAux(Fs* fs, const std::string& dir);

}  // namespace seer

#endif  // SRC_SERVER_TENANT_AUX_IO_H_
