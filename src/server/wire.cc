#include "src/server/wire.h"

#include <sstream>

#include "src/trace/binary_trace.h"
#include "src/util/bytes.h"

namespace seer {
namespace wire {

namespace {

bool ValidFrameType(uint8_t type) {
  return type >= static_cast<uint8_t>(FrameType::kEvents) &&
         type <= static_cast<uint8_t>(FrameType::kResponse);
}

bool ValidVerb(uint8_t verb) {
  return verb >= static_cast<uint8_t>(ControlVerb::kPing) &&
         verb <= static_cast<uint8_t>(ControlVerb::kShutdown);
}

bool ValidStatusCode(uint8_t code) {
  return code <= static_cast<uint8_t>(StatusCode::kInternal);
}

void PutStats(ByteWriter* w, const TenantStats& s) {
  w->PutU32(s.tenant);
  w->PutU8(s.resident ? 1 : 0);
  w->PutU64(s.references);
  w->PutU64(s.memory_bytes);
  w->PutU64(s.generation);
  w->PutU64(s.files);
  w->PutU64(s.wal_bytes);
  w->PutU64(s.checkpoints);
  w->PutU64(s.evictions);
  w->PutU64(s.restores);
  w->PutU64(s.refills);
  w->PutU64(s.hoard_files);
}

TenantStats GetStats(ByteReader* r) {
  TenantStats s;
  s.tenant = r->GetU32();
  s.resident = r->GetU8() != 0;
  s.references = r->GetU64();
  s.memory_bytes = r->GetU64();
  s.generation = r->GetU64();
  s.files = r->GetU64();
  s.wal_bytes = r->GetU64();
  s.checkpoints = r->GetU64();
  s.evictions = r->GetU64();
  s.restores = r->GetU64();
  s.refills = r->GetU64();
  s.hoard_files = r->GetU64();
  return s;
}

// Caps a decoded count by what the remaining bytes could possibly hold,
// so a corrupt count cannot trigger a huge allocation before the
// bounds-checked reads fail.
size_t PlausibleCount(uint32_t count, size_t remaining, size_t min_record_bytes) {
  const size_t most = remaining / min_record_bytes;
  return count <= most ? count : most + 1;
}

}  // namespace

std::string_view ControlVerbName(ControlVerb verb) {
  switch (verb) {
    case ControlVerb::kPing:
      return "ping";
    case ControlVerb::kTenantList:
      return "tenant-list";
    case ControlVerb::kTenantStats:
      return "tenant-stats";
    case ControlVerb::kTenantEvict:
      return "tenant-evict";
    case ControlVerb::kTenantCheckpoint:
      return "tenant-checkpoint";
    case ControlVerb::kParamsGet:
      return "params-get";
    case ControlVerb::kParamsSet:
      return "params-set";
    case ControlVerb::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

std::string EncodeFrame(FrameType type, uint32_t channel, std::string_view payload) {
  ByteWriter w;
  w.PutU32(kFrameMagic);
  w.PutU8(kProtocolVersion);
  w.PutU8(static_cast<uint8_t>(type));
  w.PutU8(0);  // flags lo
  w.PutU8(0);  // flags hi
  w.PutU32(channel);
  w.PutU32(static_cast<uint32_t>(payload.size()));
  w.PutBytes(payload);
  return w.Take();
}

StatusOr<std::optional<Frame>> FrameDecoder::Next() {
  if (!status_.ok()) {
    return status_;
  }
  if (buffered() < kFrameHeaderSize) {
    return std::optional<Frame>();
  }
  ByteReader r(std::string_view(buffer_).substr(pos_));
  const uint32_t magic = r.GetU32();
  const uint8_t version = r.GetU8();
  const uint8_t type = r.GetU8();
  const uint8_t flags_lo = r.GetU8();
  const uint8_t flags_hi = r.GetU8();
  const uint32_t channel = r.GetU32();
  const uint32_t length = r.GetU32();
  if (magic != kFrameMagic) {
    status_ = Status::InvalidArgument("wire: bad frame magic");
    return status_;
  }
  if (version != kProtocolVersion) {
    status_ = Status::InvalidArgument("wire: unsupported protocol version " +
                                      std::to_string(version));
    return status_;
  }
  if (!ValidFrameType(type)) {
    status_ = Status::InvalidArgument("wire: unknown frame type " + std::to_string(type));
    return status_;
  }
  if (flags_lo != 0 || flags_hi != 0) {
    status_ = Status::InvalidArgument("wire: nonzero reserved flags");
    return status_;
  }
  if (length > kMaxFramePayload) {
    status_ = Status::InvalidArgument("wire: frame payload length " + std::to_string(length) +
                                      " exceeds limit");
    return status_;
  }
  if (buffered() < kFrameHeaderSize + length) {
    return std::optional<Frame>();  // payload still in flight
  }
  Frame frame;
  frame.type = static_cast<FrameType>(type);
  frame.channel = channel;
  frame.payload = buffer_.substr(pos_ + kFrameHeaderSize, length);
  pos_ += kFrameHeaderSize + length;
  // Compact once the consumed prefix dominates, keeping the buffer from
  // growing without bound on a long-lived connection.
  if (pos_ > 4096 && pos_ >= buffer_.size() / 2) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  return std::optional<Frame>(std::move(frame));
}

std::string EncodeEvents(const std::vector<TraceEvent>& events) {
  std::ostringstream out;
  BinaryTraceWriter writer(out);
  for (const TraceEvent& e : events) {
    writer.Write(e);
  }
  return out.str();
}

StatusOr<std::vector<TraceEvent>> DecodeEvents(std::string_view payload) {
  std::istringstream in{std::string(payload)};
  BinaryTraceReader reader(in);
  std::vector<TraceEvent> events;
  for (;;) {
    SEER_ASSIGN_OR_RETURN(auto event, reader.Next());
    if (!event.has_value()) {
      return events;
    }
    events.push_back(*std::move(event));
  }
}

std::string EncodeControlRequest(const ControlRequest& request) {
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(request.verb));
  w.PutU32(request.tenant);
  w.PutString(request.text);
  return w.Take();
}

StatusOr<ControlRequest> DecodeControlRequest(std::string_view payload) {
  ByteReader r(payload);
  const uint8_t verb = r.GetU8();
  ControlRequest request;
  request.tenant = r.GetU32();
  request.text = std::string(r.GetString());
  if (!r.ok() || !r.AtEnd()) {
    return Status::DataLoss("wire: truncated or overlong control request");
  }
  if (!ValidVerb(verb)) {
    return Status::InvalidArgument("wire: unknown control verb " + std::to_string(verb));
  }
  request.verb = static_cast<ControlVerb>(verb);
  return request;
}

Status ControlResponse::ToStatus() const {
  if (code == StatusCode::kOk) {
    return Status::Ok();
  }
  return Status(code, message);
}

std::string EncodeControlResponse(const ControlResponse& response) {
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(response.code));
  w.PutString(response.message);
  w.PutU8(static_cast<uint8_t>(response.verb));
  w.PutU32(static_cast<uint32_t>(response.tenants.size()));
  for (const TenantId t : response.tenants) {
    w.PutU32(t);
  }
  w.PutU32(static_cast<uint32_t>(response.stats.size()));
  for (const TenantStats& s : response.stats) {
    PutStats(&w, s);
  }
  w.PutString(response.text);
  return w.Take();
}

StatusOr<ControlResponse> DecodeControlResponse(std::string_view payload) {
  ByteReader r(payload);
  ControlResponse response;
  const uint8_t code = r.GetU8();
  response.message = std::string(r.GetString());
  const uint8_t verb = r.GetU8();
  const uint32_t tenant_count = r.GetU32();
  response.tenants.reserve(PlausibleCount(tenant_count, r.remaining(), 4));
  for (uint32_t i = 0; i < tenant_count && r.ok(); ++i) {
    response.tenants.push_back(r.GetU32());
  }
  const uint32_t stats_count = r.GetU32();
  response.stats.reserve(PlausibleCount(stats_count, r.remaining(), 85));
  for (uint32_t i = 0; i < stats_count && r.ok(); ++i) {
    response.stats.push_back(GetStats(&r));
  }
  response.text = std::string(r.GetString());
  if (!r.ok() || !r.AtEnd()) {
    return Status::DataLoss("wire: truncated or overlong control response");
  }
  if (!ValidStatusCode(code)) {
    return Status::InvalidArgument("wire: unknown status code " + std::to_string(code));
  }
  if (!ValidVerb(verb)) {
    return Status::InvalidArgument("wire: unknown response verb " + std::to_string(verb));
  }
  response.code = static_cast<StatusCode>(code);
  response.verb = static_cast<ControlVerb>(verb);
  return response;
}

}  // namespace wire
}  // namespace seer
