#include "src/server/wire.h"

#include <sstream>

#include "src/trace/binary_trace.h"
#include "src/util/bytes.h"

namespace seer {
namespace wire {

namespace {

bool ValidFrameType(uint8_t type) {
  return type >= static_cast<uint8_t>(FrameType::kEvents) &&
         type <= static_cast<uint8_t>(FrameType::kResponse);
}

bool ValidVerb(uint8_t verb) {
  return verb >= static_cast<uint8_t>(ControlVerb::kPing) &&
         verb <= static_cast<uint8_t>(ControlVerb::kShutdown);
}

bool ValidStatusCode(uint8_t code) {
  return code <= static_cast<uint8_t>(StatusCode::kInternal);
}

void PutStats(ByteWriter* w, const TenantStats& s) {
  w->PutU32(s.tenant);
  w->PutU8(s.resident ? 1 : 0);
  w->PutU64(s.references);
  w->PutU64(s.memory_bytes);
  w->PutU64(s.generation);
  w->PutU64(s.files);
  w->PutU64(s.wal_bytes);
  w->PutU64(s.checkpoints);
  w->PutU64(s.evictions);
  w->PutU64(s.restores);
  w->PutU64(s.refills);
  w->PutU64(s.hoard_files);
  w->PutU64(s.refill_us_total);
  w->PutU64(s.last_refill_us);
  w->PutU64(s.hoard_dirty_clusters);
}

TenantStats GetStats(ByteReader* r) {
  TenantStats s;
  s.tenant = r->GetU32();
  s.resident = r->GetU8() != 0;
  s.references = r->GetU64();
  s.memory_bytes = r->GetU64();
  s.generation = r->GetU64();
  s.files = r->GetU64();
  s.wal_bytes = r->GetU64();
  s.checkpoints = r->GetU64();
  s.evictions = r->GetU64();
  s.restores = r->GetU64();
  s.refills = r->GetU64();
  s.hoard_files = r->GetU64();
  s.refill_us_total = r->GetU64();
  s.last_refill_us = r->GetU64();
  s.hoard_dirty_clusters = r->GetU64();
  return s;
}

// Caps a decoded count by what the remaining bytes could possibly hold,
// so a corrupt count cannot trigger a huge allocation before the
// bounds-checked reads fail.
size_t PlausibleCount(uint32_t count, size_t remaining, size_t min_record_bytes) {
  const size_t most = remaining / min_record_bytes;
  return count <= most ? count : most + 1;
}

}  // namespace

std::string_view ControlVerbName(ControlVerb verb) {
  switch (verb) {
    case ControlVerb::kPing:
      return "ping";
    case ControlVerb::kTenantList:
      return "tenant-list";
    case ControlVerb::kTenantStats:
      return "tenant-stats";
    case ControlVerb::kTenantEvict:
      return "tenant-evict";
    case ControlVerb::kTenantCheckpoint:
      return "tenant-checkpoint";
    case ControlVerb::kParamsGet:
      return "params-get";
    case ControlVerb::kParamsSet:
      return "params-set";
    case ControlVerb::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

std::string EncodeFrame(FrameType type, uint32_t channel, std::string_view payload) {
  ByteWriter w;
  w.PutU32(kFrameMagic);
  w.PutU8(kProtocolVersion);
  w.PutU8(static_cast<uint8_t>(type));
  w.PutU8(0);  // flags lo
  w.PutU8(0);  // flags hi
  w.PutU32(channel);
  w.PutU32(static_cast<uint32_t>(payload.size()));
  w.PutBytes(payload);
  return w.Take();
}

Status FrameDecoder::Scan(FrameType* type, uint32_t* channel, uint32_t* length, bool* complete) {
  *complete = false;
  if (!status_.ok()) {
    return status_;
  }
  if (buffered() < kFrameHeaderSize) {
    return Status::Ok();
  }
  ByteReader r(std::string_view(buffer_).substr(pos_));
  const uint32_t magic = r.GetU32();
  const uint8_t version = r.GetU8();
  const uint8_t raw_type = r.GetU8();
  const uint8_t flags_lo = r.GetU8();
  const uint8_t flags_hi = r.GetU8();
  *channel = r.GetU32();
  *length = r.GetU32();
  if (magic != kFrameMagic) {
    status_ = Status::InvalidArgument("wire: bad frame magic");
    return status_;
  }
  if (version != kProtocolVersion) {
    status_ = Status::InvalidArgument("wire: unsupported protocol version " +
                                      std::to_string(version));
    return status_;
  }
  if (!ValidFrameType(raw_type)) {
    status_ = Status::InvalidArgument("wire: unknown frame type " + std::to_string(raw_type));
    return status_;
  }
  if (flags_lo != 0 || flags_hi != 0) {
    status_ = Status::InvalidArgument("wire: nonzero reserved flags");
    return status_;
  }
  if (*length > kMaxFramePayload) {
    status_ = Status::InvalidArgument("wire: frame payload length " + std::to_string(*length) +
                                      " exceeds limit");
    return status_;
  }
  if (buffered() < kFrameHeaderSize + *length) {
    return Status::Ok();  // payload still in flight
  }
  *type = static_cast<FrameType>(raw_type);
  *complete = true;
  return Status::Ok();
}

StatusOr<std::optional<Frame>> FrameDecoder::Next() {
  FrameType type = FrameType::kEvents;
  uint32_t channel = 0;
  uint32_t length = 0;
  bool complete = false;
  SEER_RETURN_IF_ERROR(Scan(&type, &channel, &length, &complete));
  if (!complete) {
    return std::optional<Frame>();
  }
  Frame frame;
  frame.type = type;
  frame.channel = channel;
  frame.payload = buffer_.substr(pos_ + kFrameHeaderSize, length);
  pos_ += kFrameHeaderSize + length;
  return std::optional<Frame>(std::move(frame));
}

StatusOr<std::optional<FrameView>> FrameDecoder::NextView() {
  FrameType type = FrameType::kEvents;
  uint32_t channel = 0;
  uint32_t length = 0;
  bool complete = false;
  SEER_RETURN_IF_ERROR(Scan(&type, &channel, &length, &complete));
  if (!complete) {
    return std::optional<FrameView>();
  }
  FrameView view;
  view.type = type;
  view.channel = channel;
  view.payload = std::string_view(buffer_).substr(pos_ + kFrameHeaderSize, length);
  pos_ += kFrameHeaderSize + length;
  return std::optional<FrameView>(view);
}

std::string EncodeEvents(const std::vector<TraceEvent>& events) {
  std::ostringstream out;
  BinaryTraceWriter writer(out);
  for (const TraceEvent& e : events) {
    writer.Write(e);
  }
  return out.str();
}

StatusOr<std::vector<TraceEvent>> DecodeEvents(std::string_view payload) {
  std::istringstream in{std::string(payload)};
  BinaryTraceReader reader(in);
  std::vector<TraceEvent> events;
  for (;;) {
    SEER_ASSIGN_OR_RETURN(auto event, reader.Next());
    if (!event.has_value()) {
      return events;
    }
    events.push_back(*std::move(event));
  }
}

// --- EventArena ---------------------------------------------------------------
//
// A cursor-based re-implementation of BinaryTraceReader over a
// string_view. Field order, bounds checks, and error strings must stay
// in lockstep with binary_trace.cc — parser_fuzz_test pins the parity.

Status EventArena::GetVarint(const char* field, uint64_t* value) {
  *value = 0;
  int shift = 0;
  for (;;) {
    if (pos_ >= data_.size()) {
      return Status::DataLoss(std::string("binary trace: truncated ") + field + " after " +
                              std::to_string(events_read_) + " events");
    }
    const uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
    if (shift > 63) {
      return Status::DataLoss(std::string("binary trace: oversized varint in ") + field);
    }
    *value |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      return Status::Ok();
    }
    shift += 7;
  }
}

Status EventArena::GetZigzag(const char* field, int64_t* value) {
  uint64_t raw = 0;
  SEER_RETURN_IF_ERROR(GetVarint(field, &raw));
  *value = static_cast<int64_t>(raw >> 1) ^ -static_cast<int64_t>(raw & 1);
  return Status::Ok();
}

Status EventArena::GetPath(const char* field, PathId* out) {
  uint64_t id = 0;
  SEER_RETURN_IF_ERROR(GetVarint(field, &id));
  if (id < dict_.size()) {
    *out = dict_[id];
    return Status::Ok();
  }
  if (id != dict_.size() || id >= kBinaryTraceMaxDictionary) {
    // Ids are assigned densely; a gap means the stream is corrupt.
    return Status::DataLoss(std::string("binary trace: non-dense dictionary id in ") + field);
  }
  uint64_t len = 0;
  SEER_RETURN_IF_ERROR(GetVarint(field, &len));
  if (len > kBinaryTraceMaxPathLen) {
    return Status::DataLoss(std::string("binary trace: path length ") + std::to_string(len) +
                            " exceeds limit in " + field);
  }
  if (data_.size() - pos_ < len) {
    return Status::DataLoss(std::string("binary trace: truncated path bytes in ") + field);
  }
  const PathId interned = GlobalPaths().Intern(data_.substr(pos_, len));
  pos_ += len;
  dict_.push_back(interned);
  *out = interned;
  return Status::Ok();
}

Status EventArena::Decode(std::string_view payload) {
  data_ = payload;
  pos_ = 0;
  last_seq_ = 0;
  last_time_ = 0;
  events_read_ = 0;
  events_.clear();
  dict_.clear();

  const size_t got = data_.size() < kBinaryTraceMagicLen ? data_.size() : kBinaryTraceMagicLen;
  if (got == kBinaryTraceMagicLen &&
      data_.compare(0, kBinaryTraceMagicLen, kBinaryTraceMagic, kBinaryTraceMagicLen) == 0) {
    pos_ = kBinaryTraceMagicLen;
  } else if (got < kBinaryTraceMagicLen && data_.compare(0, got, kBinaryTraceMagic, got) == 0) {
    // A short payload whose bytes are a prefix of the magic is truncation
    // (a torn frame), not a different format.
    return Status::DataLoss("binary trace: truncated magic header");
  } else {
    return Status::InvalidArgument("binary trace: missing or bad magic header");
  }

  for (;;) {
    if (pos_ >= data_.size()) {
      // The previous event ended exactly at end of payload: a clean end.
      return Status::Ok();
    }
    int64_t seq_delta = 0;
    int64_t time_delta = 0;
    uint64_t pid = 0;
    int64_t uid = 0;
    Status s = GetZigzag("seq", &seq_delta);
    if (s.ok()) s = GetZigzag("time", &time_delta);
    if (s.ok()) s = GetVarint("pid", &pid);
    if (s.ok()) s = GetZigzag("uid", &uid);
    if (!s.ok()) {
      return s;
    }
    if (data_.size() - pos_ < 2) {
      return Status::DataLoss("binary trace: truncated op/status after " +
                              std::to_string(events_read_) + " events");
    }
    const uint8_t op_and_flags = static_cast<uint8_t>(data_[pos_]);
    const uint8_t status_byte = static_cast<uint8_t>(data_[pos_ + 1]);
    pos_ += 2;
    if ((op_and_flags & 0x7f) > static_cast<uint8_t>(Op::kChdir)) {
      return Status::DataLoss("binary trace: unknown op byte " +
                              std::to_string(op_and_flags & 0x7f));
    }
    if (status_byte > static_cast<uint8_t>(OpStatus::kNotLocal)) {
      return Status::DataLoss("binary trace: unknown status byte " + std::to_string(status_byte));
    }
    InternedEvent e;
    int64_t fd = 0;
    int64_t detail = 0;
    s = GetPath("path", &e.path);
    if (s.ok()) s = GetPath("path2", &e.path2);
    if (s.ok()) s = GetZigzag("fd", &fd);
    if (s.ok()) s = GetZigzag("detail", &detail);
    if (!s.ok()) {
      return s;
    }
    last_seq_ = static_cast<uint64_t>(static_cast<int64_t>(last_seq_) + seq_delta);
    last_time_ += time_delta;
    e.seq = last_seq_;
    e.time = last_time_;
    e.pid = static_cast<Pid>(pid);
    e.uid = static_cast<Uid>(uid);
    e.op = static_cast<Op>(op_and_flags & 0x7f);
    e.write = (op_and_flags & 0x80) != 0;
    e.status = static_cast<OpStatus>(status_byte);
    e.fd = static_cast<Fd>(fd);
    e.detail = static_cast<int32_t>(detail);
    events_.push_back(e);
    ++events_read_;
  }
}

std::string EncodeControlRequest(const ControlRequest& request) {
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(request.verb));
  w.PutU32(request.tenant);
  w.PutString(request.text);
  return w.Take();
}

StatusOr<ControlRequest> DecodeControlRequest(std::string_view payload) {
  ByteReader r(payload);
  const uint8_t verb = r.GetU8();
  ControlRequest request;
  request.tenant = r.GetU32();
  request.text = std::string(r.GetString());
  if (!r.ok() || !r.AtEnd()) {
    return Status::DataLoss("wire: truncated or overlong control request");
  }
  if (!ValidVerb(verb)) {
    return Status::InvalidArgument("wire: unknown control verb " + std::to_string(verb));
  }
  request.verb = static_cast<ControlVerb>(verb);
  return request;
}

Status ControlResponse::ToStatus() const {
  if (code == StatusCode::kOk) {
    return Status::Ok();
  }
  return Status(code, message);
}

std::string EncodeControlResponse(const ControlResponse& response) {
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(response.code));
  w.PutString(response.message);
  w.PutU8(static_cast<uint8_t>(response.verb));
  w.PutU32(static_cast<uint32_t>(response.tenants.size()));
  for (const TenantId t : response.tenants) {
    w.PutU32(t);
  }
  w.PutU32(static_cast<uint32_t>(response.stats.size()));
  for (const TenantStats& s : response.stats) {
    PutStats(&w, s);
  }
  w.PutString(response.text);
  return w.Take();
}

StatusOr<ControlResponse> DecodeControlResponse(std::string_view payload) {
  ByteReader r(payload);
  ControlResponse response;
  const uint8_t code = r.GetU8();
  response.message = std::string(r.GetString());
  const uint8_t verb = r.GetU8();
  const uint32_t tenant_count = r.GetU32();
  response.tenants.reserve(PlausibleCount(tenant_count, r.remaining(), 4));
  for (uint32_t i = 0; i < tenant_count && r.ok(); ++i) {
    response.tenants.push_back(r.GetU32());
  }
  const uint32_t stats_count = r.GetU32();
  response.stats.reserve(PlausibleCount(stats_count, r.remaining(), 109));
  for (uint32_t i = 0; i < stats_count && r.ok(); ++i) {
    response.stats.push_back(GetStats(&r));
  }
  response.text = std::string(r.GetString());
  if (!r.ok() || !r.AtEnd()) {
    return Status::DataLoss("wire: truncated or overlong control response");
  }
  if (!ValidStatusCode(code)) {
    return Status::InvalidArgument("wire: unknown status code " + std::to_string(code));
  }
  if (!ValidVerb(verb)) {
    return Status::InvalidArgument("wire: unknown response verb " + std::to_string(verb));
  }
  response.code = static_cast<StatusCode>(code);
  response.verb = static_cast<ControlVerb>(verb);
  return response;
}

}  // namespace wire
}  // namespace seer
