#include "src/server/service.h"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <utility>

#include "src/core/snapshot_store.h"

namespace seer {

HoardService::HoardService(Fs* fs, std::string root, HoardServiceConfig config)
    : fs_(fs), config_(std::move(config)), router_(fs, std::move(root), config_.router) {
  // Register tenants already on disk so list/stats enumerate them across
  // a server restart. Stores stay closed: they restore lazily on first
  // reference, exactly like an eviction.
  const StatusOr<std::vector<TenantId>> listed =
      SnapshotStore::ListTenants(fs_, router_.root());
  if (listed.ok()) {
    for (const TenantId tenant : *listed) {
      router_.SinkFor(tenant);
    }
  }
}

HoardService::~HoardService() {
  if (!uds_path_.empty()) {
    ::unlink(uds_path_.c_str());
  }
}

Status HoardService::Listen(const std::string& endpoint_spec) {
  if (listener_.valid()) {
    return Status::FailedPrecondition("hoard service: already listening");
  }
  SEER_ASSIGN_OR_RETURN(const net::Endpoint endpoint, net::ParseEndpoint(endpoint_spec));
  SEER_ASSIGN_OR_RETURN(listener_, net::Listen(endpoint));
  SEER_RETURN_IF_ERROR(net::SetNonBlocking(listener_.get()));
  if (!endpoint.tcp) {
    uds_path_ = endpoint.path;
  }
  return Status::Ok();
}

Time HoardService::Now() const {
  if (config_.clock) {
    return config_.clock();
  }
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Observer* HoardService::ObserverFor(TenantId tenant) {
  auto it = observers_.find(tenant);
  if (it == observers_.end()) {
    auto observer = std::make_unique<Observer>(config_.observer, /*fs=*/nullptr);
    observer->set_sink(router_.SinkFor(tenant));
    observer->set_miss_listener(router_.MissLogFor(tenant));
    it = observers_.emplace(tenant, std::move(observer)).first;
  }
  return it->second.get();
}

void HoardService::FlushOutbox(Connection* c) {
  if (c->outbox.empty() || !c->fd.valid()) {
    return;
  }
  // SendAll polls for writability on EAGAIN, so responses flush fully
  // here; control responses are small, so blocking the loop is bounded.
  const Status sent = net::SendAll(c->fd.get(), c->outbox);
  if (!sent.ok()) {
    c->closed = true;
  }
  c->outbox.clear();
}

wire::ControlResponse HoardService::Dispatch(const wire::ControlRequest& request) {
  wire::ControlResponse response;
  response.verb = request.verb;
  const auto fail = [&response](const Status& status) {
    response.code = status.code();
    response.message = status.message();
  };
  switch (request.verb) {
    case wire::ControlVerb::kPing:
      response.text = "pong";
      return response;
    case wire::ControlVerb::kTenantList:
      response.tenants = router_.ListTenants();
      return response;
    case wire::ControlVerb::kTenantStats: {
      std::vector<TenantId> ids;
      if (request.tenant == kInvalidTenantId) {
        ids = router_.ListTenants();
      } else {
        ids.push_back(request.tenant);
      }
      for (const TenantId id : ids) {
        const StatusOr<TenantStats> stats = router_.Stats(id);
        if (!stats.ok()) {
          fail(stats.status());
          return response;
        }
        response.stats.push_back(*stats);
      }
      return response;
    }
    case wire::ControlVerb::kTenantEvict: {
      const Status evicted = router_.EvictTenant(request.tenant);
      if (!evicted.ok()) {
        fail(evicted);
      }
      return response;
    }
    case wire::ControlVerb::kTenantCheckpoint: {
      // Checkpointing restores evicted tenants, so gate on existence —
      // a typoed id must not materialise a fresh store.
      const StatusOr<TenantStats> exists = router_.Stats(request.tenant);
      if (!exists.ok()) {
        fail(exists.status());
        return response;
      }
      const Status checkpointed = router_.CheckpointTenant(request.tenant);
      if (!checkpointed.ok()) {
        fail(checkpointed);
      }
      return response;
    }
    case wire::ControlVerb::kParamsGet: {
      const StatusOr<std::string> text = router_.GetTenantParams(request.tenant);
      if (!text.ok()) {
        fail(text.status());
        return response;
      }
      response.text = *text;
      return response;
    }
    case wire::ControlVerb::kParamsSet: {
      const Status set = router_.SetTenantParams(request.tenant, request.text);
      if (!set.ok()) {
        fail(set);
      }
      return response;
    }
    case wire::ControlVerb::kShutdown:
      response.text = "draining";
      return response;
  }
  fail(Status::InvalidArgument("unknown control verb"));
  return response;
}

void HoardService::HandleFrame(Connection* c, wire::Frame frame) {
  switch (frame.type) {
    case wire::FrameType::kEvents: {
      const TenantId tenant = frame.channel;
      const StatusOr<std::vector<TraceEvent>> events = wire::DecodeEvents(frame.payload);
      if (!events.ok() || tenant == kInvalidTenantId) {
        ++protocol_errors_;
        c->closed = true;
        return;
      }
      Observer* observer = ObserverFor(tenant);
      for (const TraceEvent& event : *events) {
        observer->OnEvent(event);
      }
      events_ingested_ += events->size();
      return;
    }
    case wire::FrameType::kRequest: {
      const StatusOr<wire::ControlRequest> request =
          wire::DecodeControlRequest(frame.payload);
      if (!request.ok()) {
        ++protocol_errors_;
        c->closed = true;
        return;
      }
      const wire::ControlResponse response = Dispatch(*request);
      c->outbox +=
          wire::EncodeFrame(wire::FrameType::kResponse, frame.channel,
                            wire::EncodeControlResponse(response));
      FlushOutbox(c);
      if (request->verb == wire::ControlVerb::kShutdown &&
          response.code == StatusCode::kOk) {
        stop_.store(true, std::memory_order_relaxed);
      }
      return;
    }
    case wire::FrameType::kResponse:
      break;  // clients must not send responses
  }
  ++protocol_errors_;
  c->closed = true;
}

void HoardService::ProcessFrames(Connection* c) {
  for (;;) {
    StatusOr<std::optional<wire::Frame>> next = c->decoder.Next();
    if (!next.ok()) {
      ++protocol_errors_;
      c->closed = true;
      return;
    }
    if (!next->has_value()) {
      return;
    }
    ++frames_received_;
    HandleFrame(c, std::move(**next));
    if (c->closed) {
      return;
    }
  }
}

Status HoardService::Serve() {
  if (!listener_.valid()) {
    return Status::FailedPrecondition("hoard service: Serve() before Listen()");
  }
  Status first_error;
  const auto latch = [&first_error](const Status& status) {
    if (first_error.ok() && !status.ok()) {
      first_error = status;
    }
  };

  char buf[65536];
  while (!stop_.load(std::memory_order_relaxed)) {
    std::vector<pollfd> fds;
    std::vector<Connection*> polled;
    fds.push_back({listener_.get(), POLLIN, 0});
    for (const auto& c : connections_) {
      short events = 0;
      if (c->decoder.buffered() < config_.conn_buffer_limit) {
        events |= POLLIN;  // else: backpressured, let the kernel throttle
      }
      fds.push_back({c->fd.get(), events, 0});
      polled.push_back(c.get());
    }
    const int ready = ::poll(fds.data(), fds.size(), config_.poll_interval_ms);
    if (ready < 0 && errno != EINTR) {
      latch(Status::IoError("hoard service: poll failed"));
      break;
    }

    if (fds[0].revents & POLLIN) {
      for (;;) {
        StatusOr<net::OwnedFd> accepted = net::Accept(listener_.get());
        if (!accepted.ok()) {
          break;  // kFailedPrecondition == nothing pending
        }
        auto conn = std::make_unique<Connection>();
        conn->fd = std::move(*accepted);
        (void)net::SetNonBlocking(conn->fd.get());
        ++connections_accepted_;
        connections_.push_back(std::move(conn));
      }
    }

    for (size_t i = 0; i < polled.size(); ++i) {
      Connection* c = polled[i];
      const short revents = fds[i + 1].revents;
      if (c->closed || (revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
        continue;
      }
      // Read and process until the socket runs dry or the connection hits
      // its buffer cap. Frames dispatch synchronously, so the ingest
      // batcher's backpressure stalls this read loop — and, through the
      // kernel socket buffer, the sender.
      while (c->decoder.buffered() < config_.conn_buffer_limit) {
        bool would_block = false;
        const StatusOr<size_t> n = net::ReadSome(c->fd.get(), buf, sizeof(buf), &would_block);
        if (!n.ok()) {
          c->closed = true;
          break;
        }
        if (would_block) {
          break;
        }
        if (*n == 0) {  // EOF
          if (!c->decoder.AtFrameBoundary()) {
            ++protocol_errors_;  // mid-frame disconnect: torn frame dropped
          }
          c->closed = true;
          break;
        }
        c->decoder.Append(std::string_view(buf, *n));
        ProcessFrames(c);
        if (c->closed || stop_.load(std::memory_order_relaxed)) {
          break;
        }
      }
      if (stop_.load(std::memory_order_relaxed)) {
        break;
      }
    }

    connections_.erase(
        std::remove_if(connections_.begin(), connections_.end(),
                       [](const std::unique_ptr<Connection>& c) { return c->closed; }),
        connections_.end());

    const Time now = Now();
    if (last_tick_ < 0 || now != last_tick_) {
      last_tick_ = now;
      latch(router_.Tick(now));
    }
  }

  // Graceful drain: finish frames already buffered, flush responses,
  // close everything, then seal + checkpoint every resident tenant.
  for (const auto& c : connections_) {
    if (!c->closed) {
      ProcessFrames(c.get());
      FlushOutbox(c.get());
    }
  }
  connections_.clear();
  latch(router_.DrainCheckpoints());
  latch(router_.Shutdown());
  latch(router_.last_error());
  return first_error;
}

}  // namespace seer
