#include "src/server/service.h"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <future>
#include <utility>

#include "src/core/snapshot_store.h"
#include "src/util/thread_pool.h"

namespace seer {

HoardService::HoardService(Fs* fs, std::string root, HoardServiceConfig config)
    : fs_(fs), config_(std::move(config)), router_(fs, std::move(root), config_.router) {
  io_threads_ = config_.io_threads > 0 ? config_.io_threads : DefaultThreadCount();
  if (io_threads_ < 1) {
    io_threads_ = 1;
  }
  // Register tenants already on disk so list/stats enumerate them across
  // a server restart. Stores stay closed: they restore lazily on first
  // reference, exactly like an eviction.
  const StatusOr<std::vector<TenantId>> listed =
      SnapshotStore::ListTenants(fs_, router_.root());
  if (listed.ok()) {
    for (const TenantId tenant : *listed) {
      router_.SinkFor(tenant);
    }
  }
}

HoardService::~HoardService() {
  if (!uds_path_.empty()) {
    ::unlink(uds_path_.c_str());
  }
}

Status HoardService::Listen(const std::string& endpoint_spec) {
  if (listener_.valid()) {
    return Status::FailedPrecondition("hoard service: already listening");
  }
  SEER_ASSIGN_OR_RETURN(const net::Endpoint endpoint, net::ParseEndpoint(endpoint_spec));
  SEER_ASSIGN_OR_RETURN(listener_, net::Listen(endpoint));
  SEER_RETURN_IF_ERROR(net::SetNonBlocking(listener_.get()));
  if (!endpoint.tcp) {
    uds_path_ = endpoint.path;
  }
  return Status::Ok();
}

Time HoardService::Now() const {
  if (config_.clock) {
    return config_.clock();
  }
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

HoardService::TenantLane* HoardService::FindLane(TenantId tenant) {
  // Safe under the shared plane lock: lanes_ gains entries only under
  // the exclusive lock and never loses them.
  const auto it = lanes_.find(tenant);
  return it == lanes_.end() ? nullptr : it->second.get();
}

HoardService::TenantLane* HoardService::EnsureLane(TenantId tenant) {
  auto it = lanes_.find(tenant);
  if (it == lanes_.end()) {
    auto lane = std::make_unique<TenantLane>();
    lane->observer = std::make_unique<Observer>(config_.observer, /*fs=*/nullptr);
    lane->observer->set_sink(router_.SinkFor(tenant));
    lane->observer->set_miss_listener(router_.MissLogFor(tenant));
    it = lanes_.emplace(tenant, std::move(lane)).first;
  }
  return it->second.get();
}

void HoardService::FlushOutbox(Connection* c) {
  if (c->outbox.empty() || !c->fd.valid()) {
    return;
  }
  // One gathered write per burst; WriteVec polls for writability on
  // EAGAIN, so responses flush fully here. Control responses are small,
  // so blocking the shard is bounded.
  std::vector<std::string_view> chunks;
  chunks.reserve(c->outbox.size());
  for (const std::string& frame : c->outbox) {
    chunks.push_back(frame);
  }
  const Status sent = net::WriteVec(c->fd.get(), chunks);
  if (!sent.ok()) {
    c->closed = true;
  }
  c->outbox.clear();
}

wire::ControlResponse HoardService::Dispatch(const wire::ControlRequest& request) {
  // Control verbs may create, restore, evict, or enumerate tenants:
  // exclusive plane access, mutually excluding every shard's deliveries.
  std::unique_lock<std::shared_mutex> plane(plane_mu_);
  wire::ControlResponse response;
  response.verb = request.verb;
  const auto fail = [&response](const Status& status) {
    response.code = status.code();
    response.message = status.message();
  };
  switch (request.verb) {
    case wire::ControlVerb::kPing:
      response.text = "pong";
      return response;
    case wire::ControlVerb::kTenantList:
      response.tenants = router_.ListTenants();
      return response;
    case wire::ControlVerb::kTenantStats: {
      std::vector<TenantId> ids;
      if (request.tenant == kInvalidTenantId) {
        ids = router_.ListTenants();
      } else {
        ids.push_back(request.tenant);
      }
      for (const TenantId id : ids) {
        const StatusOr<TenantStats> stats = router_.Stats(id);
        if (!stats.ok()) {
          fail(stats.status());
          return response;
        }
        response.stats.push_back(*stats);
      }
      return response;
    }
    case wire::ControlVerb::kTenantEvict: {
      const Status evicted = router_.EvictTenant(request.tenant);
      if (!evicted.ok()) {
        fail(evicted);
      }
      return response;
    }
    case wire::ControlVerb::kTenantCheckpoint: {
      // Checkpointing restores evicted tenants, so gate on existence —
      // a typoed id must not materialise a fresh store.
      const StatusOr<TenantStats> exists = router_.Stats(request.tenant);
      if (!exists.ok()) {
        fail(exists.status());
        return response;
      }
      const Status checkpointed = router_.CheckpointTenant(request.tenant);
      if (!checkpointed.ok()) {
        fail(checkpointed);
      }
      return response;
    }
    case wire::ControlVerb::kParamsGet: {
      const StatusOr<std::string> text = router_.GetTenantParams(request.tenant);
      if (!text.ok()) {
        fail(text.status());
        return response;
      }
      response.text = *text;
      return response;
    }
    case wire::ControlVerb::kParamsSet: {
      const Status set = router_.SetTenantParams(request.tenant, request.text);
      if (!set.ok()) {
        fail(set);
      }
      return response;
    }
    case wire::ControlVerb::kShutdown:
      response.text = "draining";
      return response;
  }
  fail(Status::InvalidArgument("unknown control verb"));
  return response;
}

void HoardService::DeliverToLane(TenantLane* lane, Connection* c, Shard* shard) {
  const std::vector<InternedEvent>& events = shard->arena.events();
  Observer* observer = lane->observer.get();
  for (const InternedEvent& event : events) {
    observer->OnInternedEvent(event);
  }
  events_ingested_.fetch_add(events.size(), std::memory_order_relaxed);
  if (config_.record_merge_log && !events.empty()) {
    lane->merge_log.push_back({c->id, events.front().seq, static_cast<uint32_t>(events.size())});
  }
}

bool HoardService::DeliverEvents(Shard* shard, Connection* c, TenantId tenant,
                                 std::string_view payload) {
  if (tenant == kInvalidTenantId) {
    return false;
  }
  if (!shard->arena.Decode(payload).ok()) {
    return false;
  }
  {
    // Fast path: tenant already known and resident. The shared lock
    // pins residency (eviction/restore require exclusive), the lane
    // mutex serializes same-tenant deliveries across shards.
    std::shared_lock<std::shared_mutex> plane(plane_mu_);
    TenantLane* lane = FindLane(tenant);
    if (lane != nullptr && router_.TenantResident(tenant)) {
      std::lock_guard<std::mutex> lock(lane->mu);
      DeliverToLane(lane, c, shard);
      return true;
    }
  }
  // Slow path (first frame for a tenant, or delivery after an eviction):
  // create the lane and let the first routed callback restore the store,
  // all under the exclusive lock the router requires for that.
  std::unique_lock<std::shared_mutex> plane(plane_mu_);
  TenantLane* lane = EnsureLane(tenant);
  std::lock_guard<std::mutex> lock(lane->mu);
  DeliverToLane(lane, c, shard);
  return true;
}

void HoardService::ProcessFrames(Shard* shard, Connection* c) {
  for (;;) {
    StatusOr<std::optional<wire::FrameView>> next = c->decoder.NextView();
    if (!next.ok()) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      c->closed = true;
      break;
    }
    if (!next->has_value()) {
      break;
    }
    const wire::FrameView frame = **next;
    frames_received_.fetch_add(1, std::memory_order_relaxed);
    switch (frame.type) {
      case wire::FrameType::kEvents: {
        if (!DeliverEvents(shard, c, frame.channel, frame.payload)) {
          protocol_errors_.fetch_add(1, std::memory_order_relaxed);
          c->closed = true;
        }
        break;
      }
      case wire::FrameType::kRequest: {
        const StatusOr<wire::ControlRequest> request =
            wire::DecodeControlRequest(frame.payload);
        if (!request.ok()) {
          protocol_errors_.fetch_add(1, std::memory_order_relaxed);
          c->closed = true;
          break;
        }
        wire::ControlResponse response;
        if (shard->index == 0) {
          response = Dispatch(*request);
        } else {
          // Control verbs run on the designated thread. Post the
          // request to shard 0's mailbox and block for the result; the
          // response frame is still written by this shard, keeping
          // per-connection ordering.
          std::promise<wire::ControlResponse> promise;
          std::future<wire::ControlResponse> future = promise.get_future();
          PostJob([this, req = *request, &promise] { promise.set_value(Dispatch(req)); });
          response = future.get();
        }
        c->outbox.push_back(wire::EncodeFrame(wire::FrameType::kResponse, frame.channel,
                                              wire::EncodeControlResponse(response)));
        if (request->verb == wire::ControlVerb::kShutdown &&
            response.code == StatusCode::kOk) {
          stop_.store(true, std::memory_order_relaxed);
          for (const auto& s : shards_) {
            if (s->index != shard->index) {
              Wake(s.get());
            }
          }
        }
        break;
      }
      case wire::FrameType::kResponse: {
        // Clients must not send responses.
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        c->closed = true;
        break;
      }
    }
    if (c->closed) {
      break;
    }
  }
  FlushOutbox(c);
}

void HoardService::PostJob(std::function<void()> job) {
  Shard* control = shards_[0].get();
  {
    std::lock_guard<std::mutex> lock(control->mail_mu);
    control->jobs.push_back(std::move(job));
  }
  Wake(control);
}

void HoardService::Wake(Shard* shard) {
  if (!shard->wake_w.valid()) {
    return;
  }
  const char byte = 0;
  // Nonblocking: a full pipe already guarantees a pending wake.
  (void)!::write(shard->wake_w.get(), &byte, 1);
}

void HoardService::DrainWakePipe(Shard* shard) {
  char bytes[256];
  while (::read(shard->wake_r.get(), bytes, sizeof(bytes)) > 0) {
  }
}

void HoardService::DrainMailbox(Shard* shard) {
  std::vector<std::unique_ptr<Connection>> incoming;
  std::vector<std::function<void()>> jobs;
  {
    std::lock_guard<std::mutex> lock(shard->mail_mu);
    incoming.swap(shard->incoming);
    jobs.swap(shard->jobs);
  }
  for (auto& c : incoming) {
    shard->connections.push_back(std::move(c));
  }
  for (auto& job : jobs) {
    job();
  }
}

void HoardService::ReadBurst(Shard* shard, Connection* c) {
  // Read and process until the socket runs dry or the connection hits
  // its buffer cap. Frames dispatch synchronously, so the ingest
  // batcher's backpressure stalls this read loop — and, through the
  // kernel socket buffer, the sender.
  char* buf = shard->read_buf.data();
  const size_t buf_size = shard->read_buf.size();
  while (c->decoder.buffered() < config_.conn_buffer_limit) {
    bool would_block = false;
    const StatusOr<size_t> n = net::ReadSome(c->fd.get(), buf, buf_size, &would_block);
    if (!n.ok()) {
      c->closed = true;
      break;
    }
    if (would_block) {
      break;
    }
    if (*n == 0) {  // EOF
      if (!c->decoder.AtFrameBoundary()) {
        // Mid-frame disconnect: torn frame dropped.
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      }
      c->closed = true;
      break;
    }
    c->decoder.Append(std::string_view(buf, *n));
    ProcessFrames(shard, c);
    if (c->closed || stop_.load(std::memory_order_relaxed)) {
      break;
    }
  }
}

bool HoardService::PollAndService(Shard* shard, int extra_fd) {
  std::vector<pollfd> fds;
  std::vector<Connection*> polled;
  fds.push_back({shard->wake_r.get(), POLLIN, 0});
  if (extra_fd >= 0) {
    fds.push_back({extra_fd, POLLIN, 0});
  }
  const size_t base = fds.size();
  for (const auto& c : shard->connections) {
    short events = 0;
    if (c->decoder.buffered() < config_.conn_buffer_limit) {
      events |= POLLIN;  // else: backpressured, let the kernel throttle
    }
    fds.push_back({c->fd.get(), events, 0});
    polled.push_back(c.get());
  }
  const int ready = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), config_.poll_interval_ms);
  if (ready < 0 && errno != EINTR) {
    return false;
  }
  if (fds[0].revents & POLLIN) {
    DrainWakePipe(shard);
  }
  DrainMailbox(shard);
  for (size_t i = 0; i < polled.size(); ++i) {
    Connection* c = polled[i];
    const short revents = fds[base + i].revents;
    if (c->closed || (revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
      continue;
    }
    ReadBurst(shard, c);
    if (stop_.load(std::memory_order_relaxed)) {
      break;
    }
  }
  shard->connections.erase(
      std::remove_if(shard->connections.begin(), shard->connections.end(),
                     [](const std::unique_ptr<Connection>& c) { return c->closed; }),
      shard->connections.end());
  return extra_fd >= 0 && fds.size() > 1 && (fds[1].revents & POLLIN) != 0;
}

void HoardService::DrainShardConnections(Shard* shard) {
  // Finish frames already buffered, flush responses, close.
  DrainMailbox(shard);
  for (const auto& c : shard->connections) {
    if (!c->closed) {
      ProcessFrames(shard, c.get());
    }
  }
  shard->connections.clear();
}

void HoardService::WorkerLoop(Shard* shard) {
  while (!stop_.load(std::memory_order_relaxed)) {
    PollAndService(shard, /*extra_fd=*/-1);
  }
  DrainShardConnections(shard);
  workers_live_.fetch_sub(1, std::memory_order_release);
  // Shard 0 may be blocked in its wait-for-workers poll.
  Wake(shards_[0].get());
}

Status HoardService::Serve() {
  if (!listener_.valid()) {
    return Status::FailedPrecondition("hoard service: Serve() before Listen()");
  }
  Status first_error;
  const auto latch = [&first_error](const Status& status) {
    if (first_error.ok() && !status.ok()) {
      first_error = status;
    }
  };

  // Build the shard plane. Shard 0 is this thread.
  shards_.clear();
  for (int i = 0; i < io_threads_; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->index = static_cast<size_t>(i);
    shard->read_buf.resize(64 * 1024);
    int pipe_fds[2] = {-1, -1};
    if (::pipe(pipe_fds) != 0) {
      shards_.clear();
      return Status::IoError("hoard service: wake pipe creation failed");
    }
    shard->wake_r.reset(pipe_fds[0]);
    shard->wake_w.reset(pipe_fds[1]);
    (void)net::SetNonBlocking(shard->wake_r.get());
    (void)net::SetNonBlocking(shard->wake_w.get());
    shards_.push_back(std::move(shard));
  }
  workers_live_.store(io_threads_ - 1, std::memory_order_relaxed);
  for (int i = 1; i < io_threads_; ++i) {
    Shard* shard = shards_[static_cast<size_t>(i)].get();
    shard->thread = std::thread([this, shard] { WorkerLoop(shard); });
  }

  Shard* control = shards_[0].get();
  while (!stop_.load(std::memory_order_relaxed)) {
    const bool listener_ready = PollAndService(control, listener_.get());
    if (listener_ready && !stop_.load(std::memory_order_relaxed)) {
      for (;;) {
        StatusOr<net::OwnedFd> accepted = net::Accept(listener_.get());
        if (!accepted.ok()) {
          break;  // kFailedPrecondition == nothing pending
        }
        auto conn = std::make_unique<Connection>();
        conn->fd = std::move(*accepted);
        conn->id = ++next_conn_id_;
        (void)net::SetNonBlocking(conn->fd.get());
        connections_accepted_.fetch_add(1, std::memory_order_relaxed);
        // Round-robin shard assignment at accept: the connection's
        // frames stay ordered because exactly one shard ever reads it.
        Shard* target =
            shards_[static_cast<size_t>(++next_shard_ % static_cast<uint64_t>(io_threads_))]
                .get();
        if (target == control) {
          control->connections.push_back(std::move(conn));
        } else {
          {
            std::lock_guard<std::mutex> lock(target->mail_mu);
            target->incoming.push_back(std::move(conn));
          }
          Wake(target);
        }
      }
    }

    const Time now = Now();
    if (last_tick_ < 0 || now != last_tick_) {
      last_tick_ = now;
      std::unique_lock<std::shared_mutex> plane(plane_mu_);
      latch(router_.Tick(now));
    }
  }

  // Graceful drain. Workers drain their own shards; shard 0 keeps
  // servicing its mailbox meanwhile — a draining worker may still post
  // control verbs it found buffered behind event frames.
  while (workers_live_.load(std::memory_order_acquire) > 0) {
    pollfd pfd{control->wake_r.get(), POLLIN, 0};
    (void)::poll(&pfd, 1, 1);
    DrainWakePipe(control);
    DrainMailbox(control);
  }
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) {
      shard->thread.join();
    }
  }
  DrainShardConnections(control);
  shards_.clear();

  latch(router_.DrainCheckpoints());
  latch(router_.Shutdown());
  latch(router_.last_error());
  return first_error;
}

std::vector<HoardService::MergeRecord> HoardService::MergeLogFor(TenantId tenant) const {
  std::shared_lock<std::shared_mutex> plane(plane_mu_);
  const auto it = lanes_.find(tenant);
  if (it == lanes_.end()) {
    return {};
  }
  std::lock_guard<std::mutex> lock(it->second->mu);
  return it->second->merge_log;
}

}  // namespace seer
