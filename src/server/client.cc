#include "src/server/client.h"

#include <poll.h>

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>
#include <utility>

#include "src/trace/binary_trace.h"

namespace seer {

namespace {

using Clock = std::chrono::steady_clock;

// Streambuf appending into a caller-owned string, so StreamEvents can
// reuse one scratch buffer (capacity and all) across frames instead of
// paying an ostringstream's internal buffer per batch.
class StringAppendBuf : public std::streambuf {
 public:
  explicit StringAppendBuf(std::string* out) : out_(out) {}

 protected:
  int_type overflow(int_type ch) override {
    if (ch != traits_type::eof()) {
      out_->push_back(static_cast<char>(ch));
    }
    return ch;
  }
  std::streamsize xsputn(const char* s, std::streamsize n) override {
    out_->append(s, static_cast<size_t>(n));
    return n;
  }

 private:
  std::string* out_;
};

}  // namespace

StatusOr<SeerClient> SeerClient::Connect(const std::string& endpoint_spec,
                                         SeerClientOptions options) {
  SEER_ASSIGN_OR_RETURN(const net::Endpoint endpoint, net::ParseEndpoint(endpoint_spec));
  Status last = Status::IoError("connect: no attempts made");
  const int attempts = std::max(1, options.connect_attempts);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(options.retry_delay_ms));
    }
    StatusOr<net::OwnedFd> fd = net::Connect(endpoint);
    if (fd.ok()) {
      return SeerClient(*std::move(fd), options);
    }
    last = fd.status();
  }
  return Status(last.code(), "after " + std::to_string(attempts) +
                                 " attempts: " + last.message());
}

Status SeerClient::StreamEvents(TenantId tenant, const std::vector<TraceEvent>& events) {
  if (tenant == kInvalidTenantId) {
    return Status::InvalidArgument("cannot stream events for the invalid tenant id");
  }
  // Keep comfortably under the frame cap even if the final event of a
  // batch is a pathological path (kMaxPathLen plus varint overhead).
  const size_t cut_at = std::min<size_t>(options_.batch_bytes,
                                         wire::kMaxFramePayload - (8u << 10));
  size_t i = 0;
  size_t in_flight = 0;
  while (i < events.size()) {
    scratch_.clear();  // keeps capacity: one allocation serves the whole stream
    StringAppendBuf buf(&scratch_);
    std::ostream payload(&buf);
    // A fresh writer per frame: every kEvents payload is a self-contained
    // trace with its own path dictionary (wire invariant).
    BinaryTraceWriter writer(payload);
    while (i < events.size() && scratch_.size() < cut_at) {
      writer.Write(events[i]);
      ++i;
    }
    SEER_RETURN_IF_ERROR(net::SendAll(
        fd_.get(), wire::EncodeFrame(wire::FrameType::kEvents, tenant, scratch_)));
    if (options_.pipeline_depth > 0 && ++in_flight >= options_.pipeline_depth) {
      SEER_RETURN_IF_ERROR(Ping());
      in_flight = 0;
    }
  }
  return Status::Ok();
}

StatusOr<wire::ControlResponse> SeerClient::Call(const wire::ControlRequest& request) {
  const uint32_t id = next_request_id_++;
  SEER_RETURN_IF_ERROR(
      net::SendAll(fd_.get(), wire::EncodeFrame(wire::FrameType::kRequest, id,
                                                wire::EncodeControlRequest(request))));
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(options_.response_timeout_ms);
  char buf[65536];
  for (;;) {
    // Drain any complete frames first (a prior Call may have left bytes).
    for (;;) {
      StatusOr<std::optional<wire::Frame>> next = decoder_.Next();
      if (!next.ok()) {
        return next.status();
      }
      if (!next->has_value()) {
        break;
      }
      const wire::Frame& frame = **next;
      if (frame.type != wire::FrameType::kResponse) {
        return Status::DataLoss("server sent a non-response frame");
      }
      if (frame.channel != id) {
        continue;  // response to an earlier, abandoned request
      }
      return wire::DecodeControlResponse(frame.payload);
    }
    const auto remaining = deadline - Clock::now();
    if (remaining <= std::chrono::milliseconds(0)) {
      return Status::IoError(std::string("timed out awaiting response to ") +
                             std::string(wire::ControlVerbName(request.verb)));
    }
    pollfd p{fd_.get(), POLLIN, 0};
    const int wait_ms = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(remaining).count() + 1);
    const int ready = ::poll(&p, 1, wait_ms);
    if (ready < 0) {
      return Status::IoError("poll failed awaiting control response");
    }
    if (ready == 0) {
      continue;  // deadline check above fires next iteration
    }
    bool would_block = false;
    SEER_ASSIGN_OR_RETURN(const size_t n,
                          net::ReadSome(fd_.get(), buf, sizeof(buf), &would_block));
    if (would_block) {
      continue;
    }
    if (n == 0) {
      return Status::IoError("server closed the connection before responding");
    }
    decoder_.Append(std::string_view(buf, n));
  }
}

StatusOr<wire::ControlResponse> SeerClient::CallVerb(wire::ControlVerb verb,
                                                     TenantId tenant, std::string text) {
  wire::ControlRequest request;
  request.verb = verb;
  request.tenant = tenant;
  request.text = std::move(text);
  SEER_ASSIGN_OR_RETURN(wire::ControlResponse response, Call(request));
  SEER_RETURN_IF_ERROR(response.ToStatus());
  return response;
}

Status SeerClient::Ping() {
  return CallVerb(wire::ControlVerb::kPing, kInvalidTenantId).status();
}

StatusOr<std::vector<TenantId>> SeerClient::TenantList() {
  SEER_ASSIGN_OR_RETURN(wire::ControlResponse response,
                        CallVerb(wire::ControlVerb::kTenantList, kInvalidTenantId));
  return std::move(response.tenants);
}

StatusOr<std::vector<TenantStats>> SeerClient::Stats(TenantId tenant) {
  SEER_ASSIGN_OR_RETURN(wire::ControlResponse response,
                        CallVerb(wire::ControlVerb::kTenantStats, tenant));
  return std::move(response.stats);
}

Status SeerClient::Evict(TenantId tenant) {
  return CallVerb(wire::ControlVerb::kTenantEvict, tenant).status();
}

Status SeerClient::Checkpoint(TenantId tenant) {
  return CallVerb(wire::ControlVerb::kTenantCheckpoint, tenant).status();
}

StatusOr<std::string> SeerClient::ParamsGet(TenantId tenant) {
  SEER_ASSIGN_OR_RETURN(wire::ControlResponse response,
                        CallVerb(wire::ControlVerb::kParamsGet, tenant));
  return std::move(response.text);
}

Status SeerClient::ParamsSet(TenantId tenant, const std::string& text) {
  return CallVerb(wire::ControlVerb::kParamsSet, tenant, text).status();
}

Status SeerClient::Shutdown() {
  return CallVerb(wire::ControlVerb::kShutdown, kInvalidTenantId).status();
}

}  // namespace seer
