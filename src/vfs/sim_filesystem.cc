#include "src/vfs/sim_filesystem.h"

#include "src/util/path.h"

namespace seer {

namespace {

constexpr int kMaxSymlinkHops = 8;

// Average directory-entry overhead charged per child when reporting
// directory sizes; hoard space calculations conservatively assume all
// directories are hoarded (Section 4.6).
constexpr uint64_t kDirEntryBytes = 32;

}  // namespace

std::string_view NodeKindName(NodeKind kind) {
  switch (kind) {
    case NodeKind::kRegular:
      return "regular";
    case NodeKind::kDirectory:
      return "directory";
    case NodeKind::kSymlink:
      return "symlink";
    case NodeKind::kDevice:
      return "device";
    case NodeKind::kPseudo:
      return "pseudo";
  }
  return "unknown";
}

SimFilesystem::SimFilesystem() {
  nodes_["/"] = NodeInfo{NodeKind::kDirectory, 0, 0, ""};
}

bool SimFilesystem::ParentIsDir(const std::string& normalized) const {
  const std::string parent = Dirname(normalized);
  const auto it = nodes_.find(parent);
  return it != nodes_.end() && it->second.kind == NodeKind::kDirectory;
}

VfsStatus SimFilesystem::Insert(std::string_view path, NodeInfo info) {
  const std::string p = NormalizePath(path);
  if (p == "/") {
    return VfsStatus::kExists;
  }
  if (nodes_.count(p) != 0) {
    return VfsStatus::kExists;
  }
  if (!ParentIsDir(p)) {
    return nodes_.count(Dirname(p)) != 0 ? VfsStatus::kNotDir : VfsStatus::kNoEnt;
  }
  nodes_.emplace(p, std::move(info));
  return VfsStatus::kOk;
}

VfsStatus SimFilesystem::Mkdir(std::string_view path) {
  return Insert(path, NodeInfo{NodeKind::kDirectory, 0, 0, ""});
}

VfsStatus SimFilesystem::MkdirAll(std::string_view path) {
  const std::string p = NormalizePath(path);
  std::string prefix = "/";
  for (const auto& part : SplitPath(p)) {
    if (prefix.back() != '/') {
      prefix += '/';
    }
    prefix += part;
    const auto it = nodes_.find(prefix);
    if (it == nodes_.end()) {
      const VfsStatus st = Mkdir(prefix);
      if (st != VfsStatus::kOk) {
        return st;
      }
    } else if (it->second.kind != NodeKind::kDirectory) {
      return VfsStatus::kNotDir;
    }
  }
  return VfsStatus::kOk;
}

VfsStatus SimFilesystem::CreateFile(std::string_view path, uint64_t size, Time mtime) {
  return Insert(path, NodeInfo{NodeKind::kRegular, size, mtime, ""});
}

VfsStatus SimFilesystem::CreateSymlink(std::string_view path, std::string_view target) {
  return Insert(path, NodeInfo{NodeKind::kSymlink, 0, 0, std::string(target)});
}

VfsStatus SimFilesystem::CreateSpecial(std::string_view path, NodeKind kind) {
  return Insert(path, NodeInfo{kind, 0, 0, ""});
}

VfsStatus SimFilesystem::Remove(std::string_view path) {
  const std::string p = NormalizePath(path);
  const auto it = nodes_.find(p);
  if (it == nodes_.end()) {
    return VfsStatus::kNoEnt;
  }
  if (it->second.kind == NodeKind::kDirectory) {
    return VfsStatus::kIsDir;
  }
  nodes_.erase(it);
  contents_.erase(p);
  return VfsStatus::kOk;
}

VfsStatus SimFilesystem::Rmdir(std::string_view path) {
  const std::string p = NormalizePath(path);
  if (p == "/") {
    return VfsStatus::kNotEmpty;
  }
  const auto it = nodes_.find(p);
  if (it == nodes_.end()) {
    return VfsStatus::kNoEnt;
  }
  if (it->second.kind != NodeKind::kDirectory) {
    return VfsStatus::kNotDir;
  }
  if (DirEntryCount(p) != 0) {
    return VfsStatus::kNotEmpty;
  }
  nodes_.erase(it);
  return VfsStatus::kOk;
}

VfsStatus SimFilesystem::Rename(std::string_view from, std::string_view to) {
  const std::string f = NormalizePath(from);
  const std::string t = NormalizePath(to);
  const auto it = nodes_.find(f);
  if (it == nodes_.end()) {
    return VfsStatus::kNoEnt;
  }
  if (!ParentIsDir(t)) {
    return VfsStatus::kNoEnt;
  }
  if (it->second.kind == NodeKind::kDirectory) {
    // Move the whole subtree. Collect first: erasing while iterating a
    // std::map range we are also inserting into is fragile.
    if (IsUnder(t, f)) {
      return VfsStatus::kNotDir;  // cannot move a directory into itself
    }
    std::vector<std::pair<std::string, NodeInfo>> moved;
    std::vector<std::string> old_keys;
    const std::string prefix = f + "/";
    for (auto sub = nodes_.lower_bound(prefix);
         sub != nodes_.end() && sub->first.compare(0, prefix.size(), prefix) == 0; ++sub) {
      moved.emplace_back(t + "/" + sub->first.substr(prefix.size()), sub->second);
      old_keys.push_back(sub->first);
    }
    moved.emplace_back(t, it->second);
    old_keys.push_back(f);
    for (const auto& key : old_keys) {
      nodes_.erase(key);
    }
    for (auto& [p, info] : moved) {
      nodes_[p] = std::move(info);
    }
    // Relocate any stored contents under the old prefix.
    std::vector<std::pair<std::string, std::string>> moved_contents;
    for (auto c = contents_.lower_bound(prefix);
         c != contents_.end() && c->first.compare(0, prefix.size(), prefix) == 0;) {
      moved_contents.emplace_back(t + "/" + c->first.substr(prefix.size()),
                                  std::move(c->second));
      c = contents_.erase(c);
    }
    for (auto& [p, content] : moved_contents) {
      contents_[p] = std::move(content);
    }
    return VfsStatus::kOk;
  }
  NodeInfo info = it->second;
  nodes_.erase(it);
  nodes_[t] = std::move(info);  // rename over an existing target replaces it
  const auto content_it = contents_.find(f);
  if (content_it != contents_.end()) {
    contents_[t] = std::move(content_it->second);
    contents_.erase(content_it);
  } else {
    contents_.erase(t);
  }
  return VfsStatus::kOk;
}

VfsStatus SimFilesystem::Truncate(std::string_view path, uint64_t new_size, Time mtime) {
  const std::string p = NormalizePath(path);
  const auto it = nodes_.find(p);
  if (it == nodes_.end()) {
    return VfsStatus::kNoEnt;
  }
  if (it->second.kind == NodeKind::kDirectory) {
    return VfsStatus::kIsDir;
  }
  it->second.size = new_size;
  it->second.mtime = mtime;
  return VfsStatus::kOk;
}

VfsStatus SimFilesystem::Touch(std::string_view path, Time mtime) {
  const std::string p = NormalizePath(path);
  const auto it = nodes_.find(p);
  if (it == nodes_.end()) {
    return VfsStatus::kNoEnt;
  }
  it->second.mtime = mtime;
  return VfsStatus::kOk;
}

bool SimFilesystem::Exists(std::string_view path) const {
  return nodes_.count(NormalizePath(path)) != 0;
}

std::optional<NodeInfo> SimFilesystem::Stat(std::string_view path) const {
  const std::string p = NormalizePath(path);
  const auto it = nodes_.find(p);
  if (it == nodes_.end()) {
    return std::nullopt;
  }
  NodeInfo info = it->second;
  if (info.kind == NodeKind::kDirectory) {
    info.size = kDirEntryBytes * DirEntryCount(p);
  }
  return info;
}

std::optional<std::string> SimFilesystem::Resolve(std::string_view path) const {
  std::string p = NormalizePath(path);
  for (int hop = 0; hop < kMaxSymlinkHops; ++hop) {
    const auto it = nodes_.find(p);
    if (it == nodes_.end()) {
      return std::nullopt;
    }
    if (it->second.kind != NodeKind::kSymlink) {
      return p;
    }
    p = AbsolutePath(Dirname(p), it->second.symlink_target);
  }
  return std::nullopt;
}

std::vector<std::string> SimFilesystem::ListDir(std::string_view path) const {
  std::vector<std::string> out;
  const std::string p = NormalizePath(path);
  const auto it = nodes_.find(p);
  if (it == nodes_.end() || it->second.kind != NodeKind::kDirectory) {
    return out;
  }
  const std::string prefix = (p == "/") ? "/" : p + "/";
  for (auto sub = nodes_.lower_bound(prefix);
       sub != nodes_.end() && sub->first.compare(0, prefix.size(), prefix) == 0; ++sub) {
    const std::string_view rest(sub->first.data() + prefix.size(),
                                sub->first.size() - prefix.size());
    if (!rest.empty() && rest.find('/') == std::string_view::npos) {
      out.emplace_back(rest);
    }
  }
  return out;
}

size_t SimFilesystem::DirEntryCount(std::string_view path) const {
  return ListDir(path).size();
}

std::vector<std::string> SimFilesystem::AllRegularFiles() const {
  std::vector<std::string> out;
  for (const auto& [p, info] : nodes_) {
    if (info.kind == NodeKind::kRegular) {
      out.push_back(p);
    }
  }
  return out;
}

VfsStatus SimFilesystem::WriteContent(std::string_view path, std::string content, Time mtime) {
  const std::string p = NormalizePath(path);
  const auto it = nodes_.find(p);
  if (it == nodes_.end()) {
    return VfsStatus::kNoEnt;
  }
  if (it->second.kind == NodeKind::kDirectory) {
    return VfsStatus::kIsDir;
  }
  it->second.size = content.size();
  it->second.mtime = mtime;
  contents_[p] = std::move(content);
  return VfsStatus::kOk;
}

std::optional<std::string> SimFilesystem::ReadContent(std::string_view path) const {
  const auto it = contents_.find(NormalizePath(path));
  if (it == contents_.end()) {
    return std::nullopt;
  }
  return it->second;
}

uint64_t SimFilesystem::TotalRegularBytes() const {
  uint64_t total = 0;
  for (const auto& [p, info] : nodes_) {
    if (info.kind == NodeKind::kRegular) {
      total += info.size;
    }
  }
  return total;
}

}  // namespace seer
