// Simulated filesystem.
//
// The paper's SEER ran against a live Linux filesystem; our substrate is an
// in-memory tree that provides the same observable surface: a hierarchical
// namespace of regular files, directories, symbolic links, device nodes and
// pseudo-files (Section 4.6), with sizes, existence checks, creation,
// deletion, and rename. Workload generators populate it and issue syscalls
// against it through the SyscallTracer; the hoarding simulators query it for
// file sizes and kinds.
#ifndef SRC_VFS_SIM_FILESYSTEM_H_
#define SRC_VFS_SIM_FILESYSTEM_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/trace/event.h"

namespace seer {

enum class NodeKind : uint8_t {
  kRegular,
  kDirectory,
  kSymlink,
  kDevice,  // e.g. /dev/tty1 — near-zero size, critical (Section 4.6)
  kPseudo,  // e.g. /proc entries
};

std::string_view NodeKindName(NodeKind kind);

struct NodeInfo {
  NodeKind kind = NodeKind::kRegular;
  uint64_t size = 0;          // bytes; directories report their entry overhead
  Time mtime = 0;             // last modification
  std::string symlink_target; // set for kSymlink
};

// Outcome of path-based operations, mirroring the errno subset the observer
// cares about.
enum class VfsStatus : uint8_t {
  kOk,
  kNoEnt,
  kExists,
  kNotDir,
  kIsDir,
  kNotEmpty,
  kLoop,  // symlink resolution exceeded the hop limit
};

class SimFilesystem {
 public:
  SimFilesystem();

  // --- Namespace construction -------------------------------------------

  // Creates a directory; parents must exist. Fails with kExists/kNoEnt.
  VfsStatus Mkdir(std::string_view path);

  // Creates a directory and all missing ancestors.
  VfsStatus MkdirAll(std::string_view path);

  // Creates a regular file of `size` bytes; parent directory must exist.
  VfsStatus CreateFile(std::string_view path, uint64_t size, Time mtime = 0);

  // Creates a symlink at `path` pointing at `target`.
  VfsStatus CreateSymlink(std::string_view path, std::string_view target);

  // Creates a device or pseudo node.
  VfsStatus CreateSpecial(std::string_view path, NodeKind kind);

  // --- Mutation -----------------------------------------------------------

  VfsStatus Remove(std::string_view path);              // file/symlink/special
  VfsStatus Rmdir(std::string_view path);               // empty directory only
  VfsStatus Rename(std::string_view from, std::string_view to);
  VfsStatus Truncate(std::string_view path, uint64_t new_size, Time mtime);
  VfsStatus Touch(std::string_view path, Time mtime);   // update mtime

  // --- Inspection ---------------------------------------------------------

  bool Exists(std::string_view path) const;
  std::optional<NodeInfo> Stat(std::string_view path) const;

  // Follows symlinks on the final component (up to 8 hops) and returns the
  // resolved path, or nullopt when resolution fails.
  std::optional<std::string> Resolve(std::string_view path) const;

  // Names of immediate children of a directory (sorted).
  std::vector<std::string> ListDir(std::string_view path) const;

  // Number of immediate children; 0 for non-directories. Cheaper than
  // ListDir — used by the meaningless-process potential-access counter.
  size_t DirEntryCount(std::string_view path) const;

  // All regular-file paths in the tree (sorted). Used to compute working
  // sets and hoard budgets.
  std::vector<std::string> AllRegularFiles() const;

  // Sum of regular-file sizes.
  uint64_t TotalRegularBytes() const;

  size_t node_count() const { return nodes_.size(); }

  // --- Content (optional) --------------------------------------------------
  // Most simulated files are size-only, but external investigators
  // (Section 3.2) read real bytes: synthetic C sources carry #include lines
  // and Makefiles carry dependency rules. Setting content also updates the
  // node size.

  VfsStatus WriteContent(std::string_view path, std::string content, Time mtime = 0);
  std::optional<std::string> ReadContent(std::string_view path) const;

 private:
  VfsStatus Insert(std::string_view path, NodeInfo info);
  bool ParentIsDir(const std::string& normalized) const;

  // Keyed by normalised absolute path; "/" is always present.
  std::map<std::string, NodeInfo> nodes_;
  std::map<std::string, std::string> contents_;
};

}  // namespace seer

#endif  // SRC_VFS_SIM_FILESYSTEM_H_
