#include "src/sim/missfree.h"

#include <algorithm>
#include <unordered_set>

namespace seer {

MissFreeResult ComputeMissFree(const std::vector<std::string>& order,
                               const std::set<std::string>& referenced,
                               const SizeOfFn& size_of) {
  MissFreeResult result;
  if (referenced.empty()) {
    return result;
  }
  std::unordered_set<std::string> remaining(referenced.begin(), referenced.end());
  uint64_t cumulative = 0;
  std::unordered_set<std::string> seen;
  for (const auto& path : order) {
    if (!seen.insert(path).second) {
      continue;  // duplicate entry in the order
    }
    cumulative += size_of(path);
    if (remaining.erase(path) != 0 && remaining.empty()) {
      result.bytes = cumulative;
      result.deepest = path;
      return result;
    }
  }
  // Some referenced files are not in the order at all.
  result.bytes = cumulative;
  result.uncovered = remaining.size();
  return result;
}

uint64_t WorkingSetBytes(const std::set<std::string>& referenced, const SizeOfFn& size_of) {
  uint64_t total = 0;
  for (const auto& path : referenced) {
    total += size_of(path);
  }
  return total;
}

std::vector<std::string> SeerCoverageOrder(const Correlator& correlator,
                                           const ClusterSet& clusters,
                                           const std::set<PathId>& always_hoard) {
  std::vector<std::string> order;
  std::unordered_set<std::string> emitted;
  auto emit = [&](std::string_view path) {
    if (!path.empty() && emitted.emplace(path).second) {
      order.emplace_back(path);
    }
  };

  for (const PathId path : always_hoard) {
    emit(GlobalPaths().PathOf(path));
  }

  const FileTable& files = correlator.files();
  struct Ranked {
    uint64_t priority;
    uint32_t index;
  };
  std::vector<Ranked> ranked;
  ranked.reserve(clusters.clusters.size());
  for (uint32_t i = 0; i < clusters.clusters.size(); ++i) {
    uint64_t priority = 0;
    for (const FileId id : clusters.clusters[i].members) {
      priority = std::max(priority, files.Get(id).last_ref_seq);
    }
    ranked.push_back({priority, i});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const Ranked& a, const Ranked& b) { return a.priority > b.priority; });

  for (const Ranked& r : ranked) {
    for (const FileId id : clusters.clusters[r.index].members) {
      if (!files.Get(id).deleted) {
        emit(files.PathOf(id));
      }
    }
  }

  // Anything known to the correlator but not clustered (excluded files are
  // in always_hoard already; this catches stragglers), newest first.
  std::vector<std::pair<uint64_t, FileId>> rest;
  for (const FileId id : files.LiveIds()) {
    const std::string_view path = files.PathOf(id);
    if (emitted.count(std::string(path)) == 0) {
      rest.emplace_back(files.Get(id).last_ref_seq, id);
    }
  }
  std::sort(rest.begin(), rest.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (const auto& [seq, id] : rest) {
    emit(files.PathOf(id));
  }
  return order;
}

std::vector<std::string> WithTail(std::vector<std::string> order,
                                  const std::vector<std::string>& universe) {
  std::unordered_set<std::string> present(order.begin(), order.end());
  for (const auto& path : universe) {
    if (present.count(path) == 0) {
      order.push_back(path);
    }
  }
  return order;
}

}  // namespace seer
