// Miss-free hoard size (Section 5.1.2).
//
// The miss-free hoard size of an algorithm for a disconnection period is
// the smallest hoard that would have contained every file referenced in
// the period, given the algorithm's fill order at the moment of
// disconnection. It is linear, fine-grained, insensitive to the configured
// hoard size, computable from traces, and it reflects what the user wants:
// working as if connected.
//
// Every hoarding algorithm reduces to a *coverage order* — the sequence in
// which it would add files as the budget grows. For LRU that is
// most-recent-first; for SEER it is the unconditional files followed by
// whole projects in activity order; for the Coda variants it is the
// priority order. The miss-free size is then the cumulative size at the
// deepest referenced file.
#ifndef SRC_SIM_MISSFREE_H_
#define SRC_SIM_MISSFREE_H_

#include <functional>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/core/clustering.h"
#include "src/core/correlator.h"

namespace seer {

using SizeOfFn = std::function<uint64_t(const std::string& path)>;

struct MissFreeResult {
  // Bytes needed to cover every referenced file present in the order.
  uint64_t bytes = 0;
  // Referenced files absent from the coverage order entirely (no hoard of
  // any size chosen by this algorithm would have contained them).
  size_t uncovered = 0;
  // The referenced file encountered deepest in the order (diagnostics).
  std::string deepest;
};

// Computes the miss-free hoard size of `order` against the set of files
// referenced during the period.
MissFreeResult ComputeMissFree(const std::vector<std::string>& order,
                               const std::set<std::string>& referenced,
                               const SizeOfFn& size_of);

// Sum of sizes of the referenced files — the working set, i.e. the space an
// optimal hoarder would need.
uint64_t WorkingSetBytes(const std::set<std::string>& referenced, const SizeOfFn& size_of);

// SEER's coverage order: always-hoard files first, then whole projects in
// descending activity order (each file at its first appearance), then
// known-but-unclustered files by recency. `always_hoard` is the observer's
// interned unconditional set; the order is rendered as strings because the
// downstream consumers (trace-driven baselines) compare pathnames.
std::vector<std::string> SeerCoverageOrder(const Correlator& correlator,
                                           const ClusterSet& clusters,
                                           const std::set<PathId>& always_hoard);

// Appends `universe` files missing from `order` (sorted by path) so that
// every algorithm can eventually cover the whole disk; keeps relative
// order of the existing entries.
std::vector<std::string> WithTail(std::vector<std::string> order,
                                  const std::vector<std::string>& universe);

}  // namespace seer

#endif  // SRC_SIM_MISSFREE_H_
