// Trace-driven miss-free hoard size simulation (Sections 5.1.2, 5.2.1).
//
// Reproduces the methodology behind Figures 2 and 3: a machine's synthetic
// trace is generated and processed on-line by the full SEER stack (observer
// -> correlator) and by the LRU baseline; the timeline is chopped into
// simulated disconnection periods of 24 hours or 7 days, separated by
// infinitesimal reconnections during which each manager's fill order is
// recomputed; and for every period we record the working set and the
// miss-free hoard size each manager would have needed. File sizes come from
// the simulated filesystem when known, otherwise from the paper's geometric
// distribution (parameter 0.00007, mean 14284 bytes).
#ifndef SRC_SIM_MACHINE_SIM_H_
#define SRC_SIM_MACHINE_SIM_H_

#include <vector>

#include "src/baselines/coda_priority.h"
#include "src/core/params.h"
#include "src/observer/observer_config.h"
#include "src/sim/missfree.h"
#include "src/util/stats.h"
#include "src/workload/machine_profile.h"

namespace seer {

// Geometric file-size parameter the paper used for unknown sizes.
constexpr double kUnknownSizeGeometricP = 0.00007;

struct PeriodStats {
  double working_set_mb = 0.0;
  double seer_mb = 0.0;
  double lru_mb = 0.0;
  double coda_mb = 0.0;  // only when MissFreeSimConfig::include_coda
  size_t referenced_files = 0;
  size_t uncovered_seer = 0;  // referenced files no SEER hoard could contain
  size_t uncovered_lru = 0;
  std::string deepest_seer;   // deepest referenced file in each order
  std::string deepest_lru;
};

struct MissFreeSimConfig {
  Time period = kMicrosPerDay;        // 24h; use 7*kMicrosPerDay for weekly
  bool use_investigators = false;     // starred variants in Figure 2
  uint64_t seed = 1;
  int days_override = 0;              // 0 = the profile's measured days
  int warmup_periods = 1;             // periods excluded from statistics
  SeerParams params;
  ObserverConfig observer;            // Section 4 heuristics configuration

  // Also evaluate a Coda-inspired priority manager (Section 6.2). The
  // paper ran three such schemes but did not report them because, without
  // the hand management they were designed for, they performed worse than
  // LRU; include_coda lets the ablation bench reproduce that observation.
  bool include_coda = false;
  CodaVariant coda_variant = CodaVariant::kBounded;
};

struct MissFreeSimResult {
  char machine = '?';
  std::vector<PeriodStats> periods;   // post-warmup
  Summary working_set_mb;
  Summary seer_mb;
  Summary lru_mb;
  Summary coda_mb;  // empty unless include_coda
  uint64_t trace_events = 0;
  size_t files_tracked = 0;
};

MissFreeSimResult RunMissFreeSimulation(const MachineProfile& profile,
                                        const MissFreeSimConfig& config);

// Deterministic per-path fallback size from the paper's geometric
// distribution (stable across calls for a given path and seed).
uint64_t GeometricSizeForPath(const std::string& path, uint64_t seed);

}  // namespace seer

#endif  // SRC_SIM_MACHINE_SIM_H_
