#include "src/sim/disconnect_model.h"

#include <algorithm>
#include <cmath>

namespace seer {

std::vector<Interval> UnreachableIntervals(const std::vector<PingSample>& samples) {
  std::vector<Interval> out;
  bool down = false;
  Time down_since = 0;
  for (const PingSample& s : samples) {
    if (!s.reachable && !down) {
      down = true;
      down_since = s.time;
    } else if (s.reachable && down) {
      down = false;
      out.push_back({down_since, s.time});
    }
  }
  if (down && !samples.empty()) {
    out.push_back({down_since, samples.back().time});
  }
  return out;
}

std::vector<FilteredDisconnection> FilterDisconnections(
    std::vector<Interval> raw, const std::vector<Interval>& suspensions,
    const DisconnectFilterConfig& config) {
  std::sort(raw.begin(), raw.end(),
            [](const Interval& a, const Interval& b) { return a.begin < b.begin; });

  // Merge disconnections separated by reconnections shorter than the
  // threshold. (Discarding the brief reconnection lengthens the combined
  // disconnection — a bias against the hoarding system, as the paper
  // notes.)
  std::vector<Interval> merged;
  for (const Interval& d : raw) {
    if (!merged.empty() && d.begin - merged.back().end < config.min_reconnection) {
      merged.back().end = std::max(merged.back().end, d.end);
    } else {
      merged.push_back(d);
    }
  }

  std::vector<FilteredDisconnection> out;
  for (const Interval& d : merged) {
    if (d.Duration() < config.min_disconnection) {
      continue;  // brief blip; misses would not be bothersome
    }
    // Subtract suspension overlap: only active use counts (Section 5.1.1).
    Time suspended = 0;
    for (const Interval& s : suspensions) {
      const Time begin = std::max(d.begin, s.begin);
      const Time end = std::min(d.end, s.end);
      if (end > begin) {
        suspended += end - begin;
      }
    }
    FilteredDisconnection f;
    f.interval = d;
    f.active_duration = d.Duration() - suspended;
    if (f.active_duration <= 0) {
      continue;  // machine completely unused (e.g. vacation): excluded
    }
    out.push_back(f);
  }
  return out;
}

DisconnectionSampler::DisconnectionSampler(double mean_hours, double median_hours,
                                           double max_hours)
    : max_hours_(max_hours) {
  const double median = std::max(median_hours, 0.26);
  const double mean = std::max(mean_hours, median * 1.0001);
  mu_ = std::log(median);
  sigma_ = std::sqrt(2.0 * std::log(mean / median));
}

double DisconnectionSampler::SampleHours(Rng& rng) const {
  const double h = rng.NextLogNormal(mu_, sigma_);
  // The 15-minute filter imposes the floor; the measurement period the cap.
  return std::clamp(h, 0.25, max_hours_);
}

DisconnectionSampler SamplerFor(const MachineProfile& profile) {
  return DisconnectionSampler(profile.mean_disc_hours, profile.median_disc_hours,
                              profile.max_disc_hours);
}

}  // namespace seer
