// Live-usage simulation (Sections 5.1.1, 5.2.2 — Tables 4 and 5).
//
// Models SEER deployed on one machine with a real replication substrate:
// the user works connected; before each disconnection SEER fills the hoard
// (fixed budget from Table 4) and the replication system fetches/evicts;
// during the disconnection only hoarded (or newly created) files are
// accessible, the user mostly sticks to hoarded projects but occasionally
// trips over a missing file and reports it at a severity, and the
// automatic detector notices kNotLocal accesses; at reconnection the
// substrate reconciles (remote updates and conflicts included) and missed
// files are pinned for the next fill.
#ifndef SRC_SIM_LIVE_SIM_H_
#define SRC_SIM_LIVE_SIM_H_

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "src/core/hoard.h"
#include "src/core/params.h"
#include "src/replication/replication_system.h"
#include "src/workload/machine_profile.h"

namespace seer {

enum class ReplicatorKind : uint8_t { kRumor, kCheapRumor, kCoda };

struct LiveDisconnection {
  double wall_hours = 0.0;
  double active_hours = 0.0;
  std::vector<MissRecord> misses;  // manual and automatic, this disconnection

  bool HasManualMiss() const;
  bool HasMissAtSeverity(MissSeverity severity) const;
  bool HasAutomaticMiss() const;
  // Active hours from disconnection start to the first miss at `severity`
  // (or first automatic miss); negative when none.
  double FirstMissHours(MissSeverity severity) const;
  double FirstAutomaticMissHours() const;
};

struct LiveSimConfig {
  uint64_t seed = 1;
  ReplicatorKind replicator = ReplicatorKind::kRumor;
  int disconnections_override = 0;   // 0 = the profile's count
  double hoard_mb_override = 0.0;    // 0 = the profile's Table 4 size
  double remote_update_prob = 0.3;   // per reconnect: peers changed something
  // Ablation of Section 2's whole-projects-only rule.
  bool allow_partial_projects = false;
  SeerParams params;
};

struct LiveSimResult {
  char machine = '?';
  double hoard_mb = 0.0;
  std::vector<LiveDisconnection> disconnections;
  ReplicationStats replication;
  uint64_t trace_events = 0;

  // Table 4 aggregates: disconnections with >=1 miss at each severity.
  std::array<size_t, 5> failures_by_severity() const;
  size_t failures_any_severity() const;   // >=1 manual miss
  size_t failures_automatic() const;
};

LiveSimResult RunLiveUsage(const MachineProfile& profile, const LiveSimConfig& config);

}  // namespace seer

#endif  // SRC_SIM_LIVE_SIM_H_
