#include "src/sim/live_sim.h"

#include <algorithm>

#include "src/core/correlator.h"
#include "src/observer/observer.h"
#include "src/process/syscall_tracer.h"
#include "src/replication/replicators.h"
#include "src/sim/disconnect_model.h"
#include "src/sim/machine_sim.h"
#include "src/sim/trackers.h"
#include "src/workload/environment.h"
#include "src/workload/user_model.h"

namespace seer {

namespace {

constexpr double kMb = 1024.0 * 1024.0;

std::unique_ptr<ReplicationSystem> MakeReplicator(ReplicatorKind kind,
                                                  ReplicationSystem::SizeFn size_of) {
  switch (kind) {
    case ReplicatorKind::kRumor:
      return std::make_unique<RumorReplicator>(std::move(size_of));
    case ReplicatorKind::kCheapRumor:
      return std::make_unique<CheapRumorReplicator>(std::move(size_of));
    case ReplicatorKind::kCoda:
      return std::make_unique<CodaReplicator>(std::move(size_of));
  }
  return nullptr;
}

}  // namespace

bool LiveDisconnection::HasManualMiss() const {
  return std::any_of(misses.begin(), misses.end(),
                     [](const MissRecord& m) { return !m.automatic; });
}

bool LiveDisconnection::HasMissAtSeverity(MissSeverity severity) const {
  return std::any_of(misses.begin(), misses.end(), [severity](const MissRecord& m) {
    return !m.automatic && m.severity == severity;
  });
}

bool LiveDisconnection::HasAutomaticMiss() const {
  return std::any_of(misses.begin(), misses.end(),
                     [](const MissRecord& m) { return m.automatic; });
}

double LiveDisconnection::FirstMissHours(MissSeverity severity) const {
  for (const MissRecord& m : misses) {  // records are chronological
    if (!m.automatic && m.severity == severity) {
      return static_cast<double>(m.time) / static_cast<double>(kMicrosPerHour);
    }
  }
  return -1.0;
}

double LiveDisconnection::FirstAutomaticMissHours() const {
  for (const MissRecord& m : misses) {
    if (m.automatic) {
      return static_cast<double>(m.time) / static_cast<double>(kMicrosPerHour);
    }
  }
  return -1.0;
}

std::array<size_t, 5> LiveSimResult::failures_by_severity() const {
  std::array<size_t, 5> out = {0, 0, 0, 0, 0};
  for (const auto& d : disconnections) {
    for (size_t s = 0; s < out.size(); ++s) {
      if (d.HasMissAtSeverity(static_cast<MissSeverity>(s))) {
        ++out[s];
      }
    }
  }
  return out;
}

size_t LiveSimResult::failures_any_severity() const {
  size_t n = 0;
  for (const auto& d : disconnections) {
    if (d.HasManualMiss()) {
      ++n;
    }
  }
  return n;
}

size_t LiveSimResult::failures_automatic() const {
  size_t n = 0;
  for (const auto& d : disconnections) {
    if (d.HasAutomaticMiss()) {
      ++n;
    }
  }
  return n;
}

LiveSimResult RunLiveUsage(const MachineProfile& profile, const LiveSimConfig& config) {
  LiveSimResult result;
  result.machine = profile.name;
  result.hoard_mb =
      config.hoard_mb_override > 0.0 ? config.hoard_mb_override : profile.hoard_mb;

  SimFilesystem fs;
  Rng rng(config.seed ^ profile.seed_base ^ 0x11feULL);
  const UserEnvironment env = BuildEnvironment(&fs, profile.env, &rng);

  ProcessTable processes;
  SimClock clock;
  SyscallTracer tracer(&fs, &processes, &clock);

  Observer observer(ObserverConfig{}, &fs);
  // The machine ran its find-style scanners long before tracing began; the
  // observer's program history already knows they are meaningless.
  observer.PretrainProgramHistory(env.find, 10'000, 9'000);
  Correlator correlator(config.params, config.seed ^ profile.seed_base);
  observer.set_sink(&correlator);

  MissLog miss_log;
  observer.set_miss_listener(&miss_log);

  const auto size_of = [&fs, &config](const std::string& path) -> uint64_t {
    const auto info = fs.Stat(path);
    return info.has_value() ? info->size : GeometricSizeForPath(path, config.seed);
  };
  // Identity-keyed flavour for the hoard manager (strings only at egress).
  const auto size_of_id = [&size_of](PathId id) -> uint64_t {
    return size_of(std::string(GlobalPaths().PathOf(id)));
  };
  std::unique_ptr<ReplicationSystem> replication =
      MakeReplicator(config.replicator, size_of);
  ReplicationHook repl_hook(replication.get());

  tracer.AddSink(&observer);
  tracer.AddSink(&repl_hook);

  UserModel user(&tracer, &env, profile.user, config.seed ^ (profile.seed_base << 1));
  user.set_miss_log(&miss_log);

  // With a remote-access substrate (Coda), connected accesses to non-cached
  // objects are serviced remotely and counted; without one, connected
  // access is out-of-band (the user can always reach the servers) and the
  // filter is only installed while disconnected.
  const auto connected_filter = [&replication, &tracer] {
    if (replication->SupportsRemoteAccess()) {
      tracer.set_availability_filter(
          [&replication](const std::string& path) { return replication->Access(path); });
    } else {
      tracer.set_availability_filter(nullptr);
    }
  };
  connected_filter();

  user.SeedHistory();

  HoardManager hoard(static_cast<uint64_t>(result.hoard_mb * kMb));
  hoard.set_allow_partial_projects(config.allow_partial_projects);
  // Conservative directory-space assumption (Section 4.6): every directory
  // is presumed hoarded. Each node costs one directory-entry record
  // (matching SimFilesystem's per-entry directory size accounting).
  hoard.set_reserved_bytes(fs.node_count() * 32);
  DisconnectionSampler sampler = SamplerFor(profile);

  const int disconnection_count = config.disconnections_override > 0
                                      ? config.disconnections_override
                                      : profile.disconnections;
  // Connected active time between disconnections, scaled so total activity
  // matches the profile's days at its daily rate.
  const double total_active_hours =
      profile.active_hours_per_day * static_cast<double>(profile.days_measured);
  const double connected_active_mean = std::max(
      0.1, 0.6 * total_active_hours / std::max(1, disconnection_count));

  for (int d = 0; d < disconnection_count; ++d) {
    // --- connected phase ----------------------------------------------------
    const double connected_hours =
        std::max(0.05, connected_active_mean * (0.5 + rng.NextDouble()));
    user.RunActiveHours(connected_hours);

    // Peers/servers may have changed things while we were connected too;
    // model a burst of remote updates before the next reconcile.
    if (rng.NextBool(config.remote_update_prob) && !env.projects.empty()) {
      const auto& proj = env.projects[rng.NextBounded(env.projects.size())];
      if (!proj.sources.empty()) {
        replication->RecordRemoteUpdate(
            proj.sources[rng.NextBounded(proj.sources.size())], clock.now());
      }
    }

    // --- hoard fill (the user signals imminent disconnection) ---------------
    for (const PathId path : miss_log.TakeFilesToHoard()) {
      hoard.Pin(path);
    }
    const ClusterSet clusters = correlator.BuildClusters();
    const HoardSelection selection =
        hoard.ChooseHoard(correlator, clusters, observer.always_hoard(), size_of_id);
    // Spare budget keeps extra replicas (the substrate has no reason to
    // evict while space remains), so a generously sized hoard behaves like
    // a full replica.
    std::vector<std::string> target = selection.PathStrings();
    uint64_t used = selection.bytes_used;
    // Probe only the selection (the sorted prefix): appended extras are
    // unique already (AllRegularFiles lists each file once).
    const size_t selection_size = target.size();
    bool appended = false;
    for (const auto& path : fs.AllRegularFiles()) {
      if (std::binary_search(target.begin(), target.begin() + selection_size, path)) {
        continue;
      }
      const uint64_t bytes = size_of(path);
      if (used + bytes <= hoard.budget_bytes()) {
        used += bytes;
        target.push_back(path);
        appended = true;
      }
    }
    if (appended) {
      std::sort(target.begin(), target.end());
    }
    replication->SetHoard(target);

    // --- disconnected phase ---------------------------------------------------
    replication->OnDisconnect(clock.now());
    const Time disconnect_start = clock.now();
    const size_t miss_index = miss_log.records().size();
    miss_log.StartDisconnection(disconnect_start);
    tracer.set_availability_filter(
        [&replication](const std::string& path) { return replication->Access(path); });
    user.set_availability(
        [&replication](const std::string& path) { return replication->IsLocal(path); });

    const double wall_hours = sampler.SampleHours(rng);
    // Only part of a disconnection is active use; the rest is suspension
    // (excluded from time-to-first-miss, Section 5.1.1).
    const double active_hours =
        std::min(wall_hours, std::max(0.1, wall_hours * (0.2 + 0.4 * rng.NextDouble())));
    user.RunActiveHours(active_hours);

    LiveDisconnection outcome;
    outcome.wall_hours = wall_hours;
    outcome.active_hours = active_hours;
    for (size_t i = miss_index; i < miss_log.records().size(); ++i) {
      MissRecord rec = miss_log.records()[i];
      rec.time -= disconnect_start;  // store as offset into the disconnection
      outcome.misses.push_back(std::move(rec));
    }
    result.disconnections.push_back(std::move(outcome));

    // Suspended remainder, then reconnect.
    clock.AdvanceHours(std::max(0.0, wall_hours - active_hours));
    user.set_availability(nullptr);
    miss_log.EndDisconnection();
    replication->OnReconnect(clock.now());
    connected_filter();
  }

  result.replication = replication->stats();
  result.trace_events = tracer.events_emitted();
  return result;
}

}  // namespace seer
