// Trace sinks used by the simulators.
//
// WorkingSetTracker records which files are referenced during the current
// disconnection period (and which were created inside it, and therefore
// need no hoarding). ReplicationHook forwards local filesystem mutations to
// the replication substrate so reconciliation has something to do.
#ifndef SRC_SIM_TRACKERS_H_
#define SRC_SIM_TRACKERS_H_

#include <set>
#include <string>

#include "src/process/syscall_tracer.h"
#include "src/replication/replication_system.h"
#include "src/trace/event.h"

namespace seer {

class WorkingSetTracker : public TraceSink {
 public:
  void OnEvent(const TraceEvent& event) override;

  // Begins a new period; previous sets are discarded.
  void Reset();

  // Files referenced this period that were NOT created inside it — the set
  // a hoard must have contained in advance.
  std::set<std::string> ReferencedPreexisting() const;

  const std::set<std::string>& referenced() const { return referenced_; }
  const std::set<std::string>& created() const { return created_; }
  size_t reference_events() const { return reference_events_; }

 private:
  std::set<std::string> referenced_;
  std::set<std::string> created_;
  size_t reference_events_ = 0;
};

// Bridges trace events to a ReplicationSystem: writes mark files dirty,
// creations/deletions propagate, renames are delete+create.
class ReplicationHook : public TraceSink {
 public:
  explicit ReplicationHook(ReplicationSystem* replication) : replication_(replication) {}

  void OnEvent(const TraceEvent& event) override;

 private:
  ReplicationSystem* replication_;
};

}  // namespace seer

#endif  // SRC_SIM_TRACKERS_H_
