#include "src/sim/trackers.h"

namespace seer {

void WorkingSetTracker::OnEvent(const TraceEvent& e) {
  if (!e.ok()) {
    return;
  }
  switch (e.op) {
    case Op::kCreate:
      created_.insert(e.path);
      referenced_.insert(e.path);
      ++reference_events_;
      break;
    case Op::kOpen:
    case Op::kExec:
    case Op::kStat:
    case Op::kChmod:
    case Op::kLink:
      referenced_.insert(e.path);
      ++reference_events_;
      break;
    case Op::kRename:
      // The new name exists only because of an in-period action; treat it
      // like a creation. If the old name was referenced it stays counted.
      created_.insert(e.path2);
      referenced_.insert(e.path2);
      referenced_.insert(e.path);
      ++reference_events_;
      break;
    case Op::kUnlink:
      referenced_.insert(e.path);
      ++reference_events_;
      break;
    default:
      break;
  }
}

void WorkingSetTracker::Reset() {
  referenced_.clear();
  created_.clear();
  reference_events_ = 0;
}

std::set<std::string> WorkingSetTracker::ReferencedPreexisting() const {
  std::set<std::string> out;
  for (const auto& path : referenced_) {
    if (created_.count(path) == 0) {
      out.insert(path);
    }
  }
  return out;
}

void ReplicationHook::OnEvent(const TraceEvent& e) {
  if (!e.ok() || replication_ == nullptr) {
    return;
  }
  switch (e.op) {
    case Op::kOpen:
      if (e.write) {
        replication_->RecordLocalUpdate(e.path, e.time);
      }
      break;
    case Op::kCreate:
      replication_->RecordLocalCreate(e.path, e.time);
      break;
    case Op::kChmod:
      replication_->RecordLocalUpdate(e.path, e.time);
      break;
    case Op::kUnlink:
      replication_->RecordLocalDelete(e.path, e.time);
      break;
    case Op::kRename:
      replication_->RecordLocalDelete(e.path, e.time);
      replication_->RecordLocalCreate(e.path2, e.time);
      break;
    default:
      break;
  }
}

}  // namespace seer
