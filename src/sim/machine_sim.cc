#include "src/sim/machine_sim.h"

#include <memory>

#include "src/baselines/lru.h"
#include "src/core/correlator.h"
#include "src/core/investigator.h"
#include "src/observer/observer.h"
#include "src/process/syscall_tracer.h"
#include "src/sim/trackers.h"
#include "src/workload/environment.h"
#include "src/workload/user_model.h"

namespace seer {

namespace {

constexpr double kMb = 1024.0 * 1024.0;

uint64_t HashPath(const std::string& path) {
  uint64_t h = 1469598103934665603ULL;
  for (const char c : path) {
    h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ULL;
  }
  return h;
}

}  // namespace

uint64_t GeometricSizeForPath(const std::string& path, uint64_t seed) {
  Rng rng(HashPath(path) ^ seed);
  return rng.NextGeometric(kUnknownSizeGeometricP);
}

MissFreeSimResult RunMissFreeSimulation(const MachineProfile& profile,
                                        const MissFreeSimConfig& config) {
  MissFreeSimResult result;
  result.machine = profile.name;

  // --- wire the stack -------------------------------------------------------
  SimFilesystem fs;
  Rng env_rng(config.seed ^ profile.seed_base);
  const UserEnvironment env = BuildEnvironment(&fs, profile.env, &env_rng);

  ProcessTable processes;
  SimClock clock;
  SyscallTracer tracer(&fs, &processes, &clock);

  Observer observer(config.observer, &fs);
  // The machine ran its find-style scanners long before tracing began; the
  // observer's program history already knows they are meaningless.
  observer.PretrainProgramHistory(env.find, 10'000, 9'000);
  Correlator correlator(config.params, config.seed ^ profile.seed_base);
  observer.set_sink(&correlator);
  if (config.use_investigators) {
    correlator.AddInvestigator(std::make_unique<IncludeScanner>());
    correlator.AddInvestigator(std::make_unique<MakefileInvestigator>());
    correlator.AddInvestigator(std::make_unique<HotLinkInvestigator>());
  }

  LruTracker lru;
  CodaPriorityTracker coda(config.coda_variant, CodaHoardProfile::GenericDefault());
  WorkingSetTracker working_set;
  tracer.AddSink(&observer);
  tracer.AddSink(&lru);
  if (config.include_coda) {
    tracer.AddSink(&coda);
  }
  tracer.AddSink(&working_set);

  UserModel user(&tracer, &env, profile.user, config.seed ^ (profile.seed_base << 1));

  const SizeOfFn size_of = [&fs, &config](const std::string& path) -> uint64_t {
    const auto info = fs.Stat(path);
    if (info.has_value()) {
      return info->size;
    }
    return GeometricSizeForPath(path, config.seed);
  };

  // --- run, period by period ------------------------------------------------
  // Pre-trace history: the measured traces begin mid-way through a
  // machine's life, so both managers start from a mature reference history.
  user.SeedHistory();
  const Time origin = clock.now();

  const int days = config.days_override > 0 ? config.days_override : profile.days_measured;
  const int period_days = static_cast<int>(config.period / kMicrosPerDay);
  const int total_periods = std::max(1, days / std::max(1, period_days));

  std::vector<double> ws_samples;
  std::vector<double> seer_samples;
  std::vector<double> lru_samples;
  std::vector<double> coda_samples;

  for (int p = 0; p < total_periods; ++p) {
    // Infinitesimal reconnection: recompute both managers' fill orders from
    // everything seen so far.
    std::vector<std::string> seer_order;
    std::vector<std::string> lru_order;
    std::vector<std::string> coda_order;
    const bool measured = p >= config.warmup_periods;
    if (measured) {
      if (config.use_investigators) {
        correlator.RunInvestigators(fs);
      }
      const ClusterSet clusters = correlator.BuildClusters();
      const auto universe = fs.AllRegularFiles();
      seer_order =
          WithTail(SeerCoverageOrder(correlator, clusters, observer.always_hoard()), universe);
      lru_order = WithTail(lru.CoverageOrder(), universe);
      if (config.include_coda) {
        coda_order = WithTail(coda.CoverageOrder(clock.now()), universe);
      }
    }
    working_set.Reset();

    // Simulate the disconnection period: the user is active for the
    // profile's hours each day, idle otherwise.
    for (int d = 0; d < period_days; ++d) {
      user.RunActiveHours(profile.active_hours_per_day);
      const Time day_end = origin + static_cast<Time>(p) * config.period +
                           static_cast<Time>(d + 1) * kMicrosPerDay;
      if (clock.now() < day_end) {
        clock.Advance(day_end - clock.now());
      }
    }

    if (!measured) {
      continue;
    }
    const std::set<std::string> referenced = working_set.ReferencedPreexisting();
    PeriodStats stats;
    stats.referenced_files = referenced.size();
    stats.working_set_mb = static_cast<double>(WorkingSetBytes(referenced, size_of)) / kMb;
    const MissFreeResult seer_mf = ComputeMissFree(seer_order, referenced, size_of);
    const MissFreeResult lru_mf = ComputeMissFree(lru_order, referenced, size_of);
    stats.seer_mb = static_cast<double>(seer_mf.bytes) / kMb;
    stats.lru_mb = static_cast<double>(lru_mf.bytes) / kMb;
    stats.uncovered_seer = seer_mf.uncovered;
    stats.uncovered_lru = lru_mf.uncovered;
    stats.deepest_seer = seer_mf.deepest;
    stats.deepest_lru = lru_mf.deepest;
    if (config.include_coda) {
      const MissFreeResult coda_mf = ComputeMissFree(coda_order, referenced, size_of);
      stats.coda_mb = static_cast<double>(coda_mf.bytes) / kMb;
      coda_samples.push_back(stats.coda_mb);
    }
    result.periods.push_back(stats);

    ws_samples.push_back(stats.working_set_mb);
    seer_samples.push_back(stats.seer_mb);
    lru_samples.push_back(stats.lru_mb);
  }

  result.working_set_mb = Summarize(ws_samples);
  result.seer_mb = Summarize(seer_samples);
  result.lru_mb = Summarize(lru_samples);
  result.coda_mb = Summarize(coda_samples);
  result.trace_events = tracer.events_emitted();
  result.files_tracked = correlator.files().size();
  return result;
}

}  // namespace seer
