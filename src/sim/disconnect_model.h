// Disconnection measurement model (Section 5.1.1).
//
// The paper measured disconnections with a daemon that periodically pinged
// a well-known site; its output was post-processed to (a) drop
// disconnections shorter than 15 minutes, (b) drop reconnections shorter
// than 15 minutes — merging the adjacent disconnections, and (c) discard
// suspension periods so only active use is counted. This header provides
// both that filtering pipeline (over raw connectivity/suspension intervals)
// and a calibrated sampler that draws filtered disconnection durations
// directly from a per-machine heavy-tailed distribution matched to
// Table 3's mean and median.
#ifndef SRC_SIM_DISCONNECT_MODEL_H_
#define SRC_SIM_DISCONNECT_MODEL_H_

#include <vector>

#include "src/trace/event.h"
#include "src/util/rng.h"
#include "src/workload/machine_profile.h"

namespace seer {

// A half-open interval of simulated time.
struct Interval {
  Time begin = 0;
  Time end = 0;

  Time Duration() const { return end - begin; }
};

// One observation from the ping daemon.
struct PingSample {
  Time time = 0;
  bool reachable = true;
};

// Raw connectivity timeline reconstructed from ping samples: maximal
// unreachable intervals.
std::vector<Interval> UnreachableIntervals(const std::vector<PingSample>& samples);

struct DisconnectFilterConfig {
  Time min_disconnection = 15 * 60 * kMicrosPerSecond;  // drop shorter gaps
  Time min_reconnection = 15 * 60 * kMicrosPerSecond;   // merge across shorter links
};

// Applies the paper's post-processing to raw disconnection intervals:
// removes short disconnections, merges disconnections separated by short
// reconnections, then subtracts overlapping suspension time from each
// surviving disconnection (returning ACTIVE durations).
struct FilteredDisconnection {
  Interval interval;      // wall-clock extent
  Time active_duration = 0;  // extent minus suspensions
};

std::vector<FilteredDisconnection> FilterDisconnections(
    std::vector<Interval> raw, const std::vector<Interval>& suspensions,
    const DisconnectFilterConfig& config = {});

// Calibrated duration sampler: lognormal matched to a machine's Table 3
// mean/median (median = e^mu; mean = e^(mu + sigma^2/2)), clamped to
// [0.25h, max].
class DisconnectionSampler {
 public:
  DisconnectionSampler(double mean_hours, double median_hours, double max_hours);

  double SampleHours(Rng& rng) const;

  double mu() const { return mu_; }
  double sigma() const { return sigma_; }

 private:
  double mu_;
  double sigma_;
  double max_hours_;
};

// Sampler for a machine profile.
DisconnectionSampler SamplerFor(const MachineProfile& profile);

}  // namespace seer

#endif  // SRC_SIM_DISCONNECT_MODEL_H_
