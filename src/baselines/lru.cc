#include "src/baselines/lru.h"

#include <algorithm>

namespace seer {

void LruTracker::OnEvent(const TraceEvent& e) {
  if (!e.ok()) {
    return;
  }
  switch (e.op) {
    case Op::kOpen:
    case Op::kCreate:
    case Op::kExec:
    case Op::kStat:
    case Op::kChmod:
    case Op::kLink:
      break;
    case Op::kRename: {
      // The new name inherits the reference; the old name is gone.
      last_ref_.erase(e.path);
      last_seq_.erase(e.path);
      last_ref_[e.path2] = e.time;
      last_seq_[e.path2] = e.seq;
      return;
    }
    case Op::kUnlink: {
      last_ref_.erase(e.path);
      last_seq_.erase(e.path);
      return;
    }
    default:
      return;  // closes, directory ops, process ops
  }
  last_ref_[e.path] = e.time;
  last_seq_[e.path] = e.seq;
}

std::vector<std::string> LruTracker::CoverageOrder() const {
  struct Entry {
    const std::string* path;
    Time time;
    uint64_t seq;
  };
  std::vector<Entry> entries;
  entries.reserve(last_ref_.size());
  for (const auto& [path, time] : last_ref_) {
    const auto seq_it = last_seq_.find(path);
    entries.push_back({&path, time, seq_it == last_seq_.end() ? 0 : seq_it->second});
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    if (a.time != b.time) {
      return a.time > b.time;
    }
    return a.seq > b.seq;
  });
  std::vector<std::string> out;
  out.reserve(entries.size());
  for (const Entry& e : entries) {
    out.push_back(*e.path);
  }
  return out;
}

std::optional<Time> LruTracker::LastReference(const std::string& path) const {
  const auto it = last_ref_.find(path);
  if (it == last_ref_.end()) {
    return std::nullopt;
  }
  return it->second;
}

}  // namespace seer
