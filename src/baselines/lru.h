// Strict-LRU hoarding baseline.
//
// Early disconnected-operation systems loaded the hoard with the most
// recently referenced files (Section 6.1). This tracker consumes the raw
// trace — with none of SEER's filtering, which is precisely why a find scan
// destroys its history (Section 4.1) — and produces the recency ordering
// that the miss-free hoard size algorithm of Section 5.1.2 needs:
//   1. sort all files by last reference time before the disconnection;
//   2. mark the files referenced during the disconnection;
//   3. find the last marked file;
//   4. the miss-free hoard size is the sum of sizes down to that file.
#ifndef SRC_BASELINES_LRU_H_
#define SRC_BASELINES_LRU_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/process/syscall_tracer.h"
#include "src/trace/event.h"

namespace seer {

class LruTracker : public TraceSink {
 public:
  // TraceSink: every successful path-bearing file operation refreshes the
  // file's recency. Directory operations are ignored (they are namespace,
  // not content).
  void OnEvent(const TraceEvent& event) override;

  // Most-recent-first ordering of every file ever referenced.
  std::vector<std::string> CoverageOrder() const;

  std::optional<Time> LastReference(const std::string& path) const;

  size_t tracked_files() const { return last_ref_.size(); }

 private:
  std::map<std::string, Time> last_ref_;
  std::map<std::string, uint64_t> last_seq_;  // tie-break for equal times
};

}  // namespace seer

#endif  // SRC_BASELINES_LRU_H_
