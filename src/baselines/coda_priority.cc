#include "src/baselines/coda_priority.h"

#include <algorithm>

#include "src/util/path.h"

namespace seer {

void CodaHoardProfile::SetPriority(const std::string& prefix, int priority) {
  prefix_priority_[NormalizePath(prefix)] = priority;
}

int CodaHoardProfile::PriorityOf(const std::string& path) const {
  int best = 0;
  size_t best_len = 0;
  for (const auto& [prefix, priority] : prefix_priority_) {
    if (IsUnder(path, prefix) && prefix.size() >= best_len) {
      best = priority;
      best_len = prefix.size();
    }
  }
  return best;
}

CodaHoardProfile CodaHoardProfile::GenericDefault() {
  CodaHoardProfile p;
  p.SetPriority("/bin", 600);
  p.SetPriority("/usr/bin", 600);
  p.SetPriority("/lib", 800);
  p.SetPriority("/usr/lib", 800);
  p.SetPriority("/etc", 900);
  p.SetPriority("/home", 100);
  return p;
}

void CodaPriorityTracker::OnEvent(const TraceEvent& event) { lru_.OnEvent(event); }

double CodaPriorityTracker::Score(const std::string& path, Time last_ref, Time now) const {
  const double age_hours =
      static_cast<double>(now - last_ref) / static_cast<double>(kMicrosPerHour);
  const double priority = static_cast<double>(profile_.PriorityOf(path));
  switch (variant_) {
    case CodaVariant::kPureProfile:
      // Profile dominates; recency only as a small tie-break.
      return priority * 1e6 - age_hours;
    case CodaVariant::kHybrid:
      return hybrid_weight_ * priority - (1.0 - hybrid_weight_) * age_hours;
    case CodaVariant::kBounded:
      // CODA's shape: young files ordered by recency regardless of
      // priority; past the bound, the profile priority takes over.
      if (age_hours <= age_bound_hours_) {
        return 1e9 - age_hours;  // recency regime, above every old file
      }
      return priority - age_hours * 1e-3;
  }
  return -age_hours;
}

std::vector<std::string> CodaPriorityTracker::CoverageOrder(Time now) const {
  struct Entry {
    std::string path;
    double score;
  };
  std::vector<Entry> entries;
  for (const auto& path : lru_.CoverageOrder()) {
    const auto last = lru_.LastReference(path);
    entries.push_back({path, Score(path, last.value_or(0), now)});
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& a, const Entry& b) { return a.score > b.score; });
  std::vector<std::string> out;
  out.reserve(entries.size());
  for (auto& e : entries) {
    out.push_back(std::move(e.path));
  }
  return out;
}

}  // namespace seer
