// Coda-inspired priority hoarding baselines.
//
// CODA enhanced simple LRU with user-assigned hoard priorities: the user
// gives files (or groups, via "hoard profiles") an offset applied to the
// LRU age, and a global bound arranges that for old-enough files the
// offset dominates (Section 6.2). The paper's simulations included three
// schemes inspired by CODA's formula; all performed worse than plain LRU
// because nobody hand-tuned the profiles — which is exactly the point of
// SEER. We implement three analogous variants:
//   * kPureProfile — ordering by profile priority alone (age breaks ties);
//   * kHybrid      — weighted combination of profile priority and recency;
//   * kBounded     — CODA's actual shape: recency governs young files, the
//     profile priority governs files older than a bound.
// With an empty or generic profile these degenerate in the ways the paper
// observed; bench/ablation_params quantifies it.
#ifndef SRC_BASELINES_CODA_PRIORITY_H_
#define SRC_BASELINES_CODA_PRIORITY_H_

#include <map>
#include <string>
#include <vector>

#include "src/baselines/lru.h"
#include "src/trace/event.h"

namespace seer {

enum class CodaVariant : uint8_t {
  kPureProfile,
  kHybrid,
  kBounded,
};

// A hoard profile: path-prefix -> priority (larger = more important).
// Real CODA users loaded different profile sets per planned activity; an
// untuned deployment has only coarse defaults.
class CodaHoardProfile {
 public:
  void SetPriority(const std::string& prefix, int priority);
  int PriorityOf(const std::string& path) const;  // longest-prefix match; 0 default

  // A generic untuned profile: system binaries and libraries high,
  // everything else default — roughly what an administrator would install.
  static CodaHoardProfile GenericDefault();

 private:
  std::map<std::string, int> prefix_priority_;
};

class CodaPriorityTracker : public TraceSink {
 public:
  CodaPriorityTracker(CodaVariant variant, CodaHoardProfile profile,
                      double hybrid_weight = 0.5, double age_bound_hours = 24.0)
      : variant_(variant),
        profile_(std::move(profile)),
        hybrid_weight_(hybrid_weight),
        age_bound_hours_(age_bound_hours) {}

  void OnEvent(const TraceEvent& event) override;

  // Highest-priority-first coverage order as of `now`.
  std::vector<std::string> CoverageOrder(Time now) const;

 private:
  double Score(const std::string& path, Time last_ref, Time now) const;

  CodaVariant variant_;
  CodaHoardProfile profile_;
  double hybrid_weight_;
  double age_bound_hours_;
  LruTracker lru_;
};

}  // namespace seer

#endif  // SRC_BASELINES_CODA_PRIORITY_H_
