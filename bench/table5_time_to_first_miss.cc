// Table 5 — Hours until the first miss, for failed disconnections.
//
// Runs the live-usage simulation and, for every machine and severity level
// that experienced misses (plus the automatic detector), prints the mean,
// median, standard deviation and range of the time from disconnection to
// the first miss at that severity, in ACTIVE hours (suspensions excluded,
// Section 5.1.1). Rows with no misses are omitted, as in the paper.
//
// Expected shape (paper): misses are rare; when they happen the median time
// to first miss is small compared to the disconnection length, yet users
// continue working afterwards (the severities are mostly 3-4).
#include <cstdio>
#include <algorithm>
#include <vector>

#include "bench/bench_util.h"
#include "src/sim/live_sim.h"
#include "src/util/stats.h"

namespace seer {
namespace {

void PrintRow(char machine, const char* label, const std::vector<double>& hours) {
  if (hours.empty()) {
    return;
  }
  const Summary s = Summarize(hours);
  std::printf("%-4c %-5s %5zu | %7.2f %7.2f %7.2f %7.2f %7.2f\n", machine, label, s.count,
              s.mean, s.count >= 4 ? s.median : -1.0, s.stddev, s.min, s.max);
}

}  // namespace
}  // namespace seer

int main() {
  using namespace seer;
  bench::PrintHeader(
      "Table 5: hours until first miss for failed disconnections\n"
      "(median printed as -1 when there are fewer than 4 samples, as the\n"
      "paper omits it; machines with no misses are omitted entirely)");

  std::printf("%-4s %-5s %5s | %7s %7s %7s %7s %7s\n", "user", "sev", "n", "mean", "median",
              "sigma", "min", "max");
  bench::PrintRule();

  for (const MachineProfile& profile : AllMachineProfiles()) {
    LiveSimConfig config;
    config.seed = 1337;  // same runs as the Table 4 bench
    config.disconnections_override = bench::ScaledDisconnections(profile.disconnections);
    const LiveSimResult r = RunLiveUsage(profile, config);

    for (int sev = 0; sev <= 4; ++sev) {
      std::vector<double> hours;
      for (const auto& d : r.disconnections) {
        const double h = d.FirstMissHours(static_cast<MissSeverity>(sev));
        if (h >= 0.0) {
          hours.push_back(h);
        }
      }
      const char labels[5][4] = {"0", "1", "2", "3", "4"};
      PrintRow(r.machine, labels[sev], hours);
    }
    std::vector<double> auto_hours;
    for (const auto& d : r.disconnections) {
      const double h = d.FirstAutomaticMissHours();
      if (h >= 0.0) {
        auto_hours.push_back(h);
      }
    }
    PrintRow(r.machine, "auto", auto_hours);
  }

  bench::PrintRule();
  // The paper also computes time-to-first-miss across ALL disconnections,
  // successful ones contributing their full duration: the result is then
  // "essentially equal to the mean disconnection time" — evidence that
  // misses were not bothersome. Reproduce that for machine F.
  {
    const MachineProfile profile = GetMachineProfile('F');
    LiveSimConfig config;
    config.seed = 1337;
    config.disconnections_override = bench::ScaledDisconnections(profile.disconnections);
    const LiveSimResult r = RunLiveUsage(profile, config);
    std::vector<double> first_or_end;
    std::vector<double> durations;
    for (const auto& d : r.disconnections) {
      double first = d.active_hours;
      for (const auto& m : d.misses) {
        if (!m.automatic) {
          first = std::min(first, static_cast<double>(m.time) /
                                      static_cast<double>(kMicrosPerHour));
          break;
        }
      }
      first_or_end.push_back(first);
      durations.push_back(d.active_hours);
    }
    const Summary f = Summarize(first_or_end);
    const Summary all = Summarize(durations);
    std::printf(
        "machine F across ALL disconnections: time-to-first-miss mean %.2f h\n"
        "vs mean active disconnection %.2f h (paper: these become essentially\n"
        "equal, because misses are rare)\n",
        f.mean, all.mean);
  }
  bench::PrintRule();
  std::printf(
      "paper rows for reference (machine F): sev1 mean 10.6, sev2 6.6,\n"
      "sev3 3.4, sev4 6.2, auto 20.4 hours; misses occur well into the\n"
      "disconnection but before its end.\n");
  return 0;
}
