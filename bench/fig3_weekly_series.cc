// Figure 3 — Performance of two hoard managers vs working set sizes for
// simulated weekly disconnections of machine F (the most heavily used).
//
// Prints one row per simulated week, sorted by working-set size as in the
// paper (the X axis is the sort order, not calendar order). Expected shape:
// the SEER series hugs the working-set series from below-to-slightly-above,
// while the LRU series sits well above both, with the gap widest in the
// middle of the distribution.
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/sim/machine_sim.h"

int main() {
  using namespace seer;
  bench::PrintHeader(
      "Figure 3: weekly working sets and miss-free hoard sizes, machine F\n"
      "(rows sorted by working-set size; paper shape: SEER tracks the\n"
      "working set, LRU needs much more)");

  const MachineProfile profile = GetMachineProfile('F');
  MissFreeSimConfig config;
  config.period = 7 * kMicrosPerDay;
  config.seed = 4242;
  config.days_override = bench::ScaledDays(profile.days_measured);
  const MissFreeSimResult result = RunMissFreeSimulation(profile, config);

  std::vector<PeriodStats> weeks = result.periods;
  std::sort(weeks.begin(), weeks.end(),
            [](const PeriodStats& a, const PeriodStats& b) {
              return a.working_set_mb < b.working_set_mb;
            });

  std::printf("%5s %12s %12s %12s %8s\n", "week", "workset(MB)", "seer(MB)", "lru(MB)", "refs");
  for (size_t i = 0; i < weeks.size(); ++i) {
    std::printf("%5zu %12.1f %12.1f %12.1f %8zu\n", i + 1, weeks[i].working_set_mb,
                weeks[i].seer_mb, weeks[i].lru_mb, weeks[i].referenced_files);
  }
  bench::PrintRule();
  std::printf("means: workset %.1f MB, seer %.1f MB, lru %.1f MB  (%llu trace events)\n",
              result.working_set_mb.mean, result.seer_mb.mean, result.lru_mb.mean,
              static_cast<unsigned long long>(result.trace_events));
  return 0;
}
