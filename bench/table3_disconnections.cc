// Table 3 — Disconnection statistics.
//
// For each machine the bench (a) generates a raw connectivity/suspension
// timeline from the ping-daemon model, applies the paper's 15-minute
// post-processing filter, and (b) draws the machine's disconnection count
// from the calibrated heavy-tailed sampler, then prints count, total, mean,
// median, standard deviation and max disconnection hours next to the
// paper's published row.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/sim/disconnect_model.h"
#include "src/util/stats.h"

int main() {
  using namespace seer;
  bench::PrintHeader("Table 3: disconnection statistics (hours)");

  std::printf("%-4s %6s | %-36s | %-36s\n", "", "", "simulated (this run)",
              "paper (published)");
  std::printf("%-4s %6s | %7s %7s %7s %7s %7s | %7s %7s %7s %7s %7s\n", "user", "discs", "total",
              "mean", "median", "sigma", "max", "total", "mean", "median", "sigma", "max");
  bench::PrintRule();

  for (const MachineProfile& p : AllMachineProfiles()) {
    const DisconnectionSampler sampler = SamplerFor(p);
    Rng rng(p.seed_base ^ 0x7ab1e3);
    std::vector<double> hours;
    for (int d = 0; d < p.disconnections; ++d) {
      hours.push_back(sampler.SampleHours(rng));
    }
    const Summary s = Summarize(hours);
    std::printf("%-4c %6d | %7.0f %7.2f %7.2f %7.2f %7.2f | %7.0f %7.2f %7.2f %7.2f %7.2f\n",
                p.name, p.disconnections, s.total, s.mean, s.median, s.stddev, s.max,
                p.total_disc_hours, p.mean_disc_hours, p.median_disc_hours, p.sigma_disc_hours,
                p.max_disc_hours);
  }

  bench::PrintRule();
  std::printf(
      "filter pipeline demo (Section 5.1.1): raw ping samples -> filtered\n"
      "disconnections (drop <15min gaps, merge <15min reconnections,\n"
      "subtract suspensions):\n");
  // A raw day: 10-minute blip, two disconnections separated by a 5-minute
  // reconnection, a 16-hour overnight disconnection mostly suspended.
  const Time m = 60 * kMicrosPerSecond;
  std::vector<Interval> raw = {
      {10 * m, 20 * m},            // blip: dropped
      {60 * m, 90 * m},            // merged with the next
      {95 * m, 150 * m},           // ...across a 5-minute reconnection
      {480 * m, 1440 * m},         // 16h overnight
  };
  std::vector<Interval> suspensions = {{540 * m, 1380 * m}};  // 14h suspended
  const auto filtered = FilterDisconnections(raw, suspensions);
  for (const auto& f : filtered) {
    std::printf("  disconnection [%5lld, %5lld] min, active %.1f h\n",
                static_cast<long long>(f.interval.begin / m),
                static_cast<long long>(f.interval.end / m),
                static_cast<double>(f.active_duration) / static_cast<double>(kMicrosPerHour));
  }
  return 0;
}
