// Serving-plane scaling: the sharded multi-threaded HoardService.
//
// Stands the real service up on a unix socket over MemFs and streams
// pre-encoded kEvents frames from concurrent sender connections (one
// tenant per connection — the deployment shape), sweeping the I/O shard
// count 1/2/4/8. Frames are encoded before the clock starts, so the
// measured path is the server's: poll, frame scan, arena decode,
// observer, stripe-sharded fold. Each sender ends with its own Ping
// barrier on its own connection, so "elapsed" covers ingest of every
// event, not just the writes.
//
// While the fleet streams, a dedicated control connection pings the
// server and records round-trip latency — the control plane must stay
// responsive while the data plane is saturated (verbs execute on shard 0
// via the mailbox; this measures that path under load).
//
// A second, offline section measures allocations per frame for the
// zero-copy decode path (FrameDecoder::NextView + wire::EventArena)
// against the legacy one (Frame with an owned payload +
// wire::DecodeEvents), via a counting global operator new.
//
// Scale knobs:
//   SEER_SVC_TENANTS  concurrent sender connections (default 8)
//   SEER_SVC_REFS     references per tenant         (default 20000)
//   SEER_BENCH_FULL   4x the references
//
// Output: BENCH_service.json
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/server/client.h"
#include "src/server/net.h"
#include "src/server/service.h"
#include "src/server/wire.h"
#include "src/util/fs.h"
#include "src/util/path_interner.h"

// --- allocation counting -----------------------------------------------------
//
// Thread-local counter bumped by the replaced global operator new; the
// decode comparison runs single-threaded, so thread-local suffices and
// the off state costs one relaxed load.
namespace {
std::atomic<bool> g_count_allocations{false};
thread_local uint64_t t_allocation_count = 0;
}  // namespace

void* operator new(std::size_t size) {
  if (g_count_allocations.load(std::memory_order_relaxed)) {
    ++t_allocation_count;
  }
  void* p = std::malloc(size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace seer {
namespace {

size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') {
    return fallback;
  }
  const long long n = std::atoll(v);
  return n > 0 ? static_cast<size_t>(n) : fallback;
}

// One tenant's syscall stream: open/close pairs over a zipf-ish mix of a
// hot working set and a long tail, tenant-specific order (seeded), times
// advancing per reference. 2 events = 1 reference.
std::vector<TraceEvent> TenantEvents(uint32_t seed, size_t refs) {
  std::vector<TraceEvent> events;
  events.reserve(2 * refs);
  uint64_t state = seed * 2654435761u + 1;
  Time time = 0;
  Fd fd = 1000;
  for (size_t i = 0; i < refs; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const uint32_t roll = static_cast<uint32_t>(state >> 33) % 100;
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const uint32_t file = roll < 75 ? static_cast<uint32_t>(state >> 33) % 32
                                    : static_cast<uint32_t>(state >> 33) % 512;
    time += kMicrosPerSecond / 8;
    TraceEvent open;
    open.seq = 2 * i;
    open.time = time;
    open.pid = 1 + static_cast<Pid>(i % 3);
    open.op = Op::kOpen;
    open.path = "/fleet/f" + std::to_string(file);
    open.fd = fd;
    TraceEvent close;
    close.seq = 2 * i + 1;
    close.time = time;
    close.pid = open.pid;
    close.op = Op::kClose;
    close.fd = fd;
    ++fd;
    events.push_back(std::move(open));
    events.push_back(close);
  }
  return events;
}

// Pre-encodes a tenant's stream into ready-to-send kEvents frames of
// kEventsPerFrame events each (compact paths: ~100 KiB per frame, well
// under the 4 MiB cap and in the client library's batching regime).
constexpr size_t kEventsPerFrame = 4096;

std::vector<std::string> EncodeFrames(TenantId tenant,
                                      const std::vector<TraceEvent>& events) {
  std::vector<std::string> frames;
  for (size_t i = 0; i < events.size(); i += kEventsPerFrame) {
    const size_t n = std::min(kEventsPerFrame, events.size() - i);
    const std::vector<TraceEvent> batch(events.begin() + i, events.begin() + i + n);
    frames.push_back(
        wire::EncodeFrame(wire::FrameType::kEvents, tenant, wire::EncodeEvents(batch)));
  }
  return frames;
}

// Sends every frame, then barriers with a Ping on the same connection —
// frames are processed in connection order, so the ack means this
// tenant's stream is fully ingested.
bool SendAndBarrier(const net::Endpoint& endpoint, const std::vector<std::string>& frames) {
  StatusOr<net::OwnedFd> fd = net::Connect(endpoint);
  if (!fd.ok()) {
    std::fprintf(stderr, "sender connect: %s\n", fd.status().message().c_str());
    return false;
  }
  for (const std::string& frame : frames) {
    if (const Status sent = net::SendAll(fd->get(), frame); !sent.ok()) {
      std::fprintf(stderr, "sender send: %s\n", sent.message().c_str());
      return false;
    }
  }
  wire::ControlRequest ping;
  ping.verb = wire::ControlVerb::kPing;
  if (const Status sent = net::SendAll(
          fd->get(), wire::EncodeFrame(wire::FrameType::kRequest, 1,
                                       wire::EncodeControlRequest(ping)));
      !sent.ok()) {
    std::fprintf(stderr, "sender ping: %s\n", sent.message().c_str());
    return false;
  }
  wire::FrameDecoder decoder;
  char buf[4096];
  for (;;) {
    StatusOr<std::optional<wire::Frame>> next = decoder.Next();
    if (!next.ok()) {
      std::fprintf(stderr, "sender decode: %s\n", next.status().message().c_str());
      return false;
    }
    if (next->has_value()) {
      return (*next)->type == wire::FrameType::kResponse;
    }
    bool would_block = false;
    StatusOr<size_t> n = net::ReadSome(fd->get(), buf, sizeof(buf), &would_block);
    if (!n.ok() || *n == 0) {
      std::fprintf(stderr, "sender read: connection lost awaiting barrier\n");
      return false;
    }
    decoder.Append(std::string_view(buf, *n));
  }
}

uint64_t Percentile(std::vector<uint64_t> v, double p) {
  if (v.empty()) {
    return 0;
  }
  std::sort(v.begin(), v.end());
  const size_t idx = std::min(v.size() - 1, static_cast<size_t>(p * (v.size() - 1) + 0.5));
  return v[idx];
}

struct SweepPoint {
  int io_threads = 0;
  double refs_per_sec = 0.0;
  uint64_t events_ingested = 0;
  uint64_t frames = 0;
  double elapsed_sec = 0.0;
  uint64_t ping_p50_us = 0;
  uint64_t ping_p99_us = 0;
};

// One sweep point: fresh MemFs + service at `io_threads`, the whole fleet
// streamed concurrently, Ping latency sampled throughout.
bool RunSweepPoint(int io_threads, const std::vector<std::vector<std::string>>& fleets,
                   SweepPoint* out) {
  MemFs fs;
  HoardServiceConfig config;
  config.io_threads = io_threads;
  HoardService service(&fs, "/srv", config);
  const std::string socket_path = "/tmp/seer-svc-" + std::to_string(::getpid()) + "-" +
                                  std::to_string(io_threads) + ".sock";
  if (const Status listening = service.Listen("unix:" + socket_path); !listening.ok()) {
    std::fprintf(stderr, "listen: %s\n", listening.message().c_str());
    return false;
  }
  Status serve_status;
  std::thread server([&] { serve_status = service.Serve(); });

  StatusOr<net::Endpoint> endpoint = net::ParseEndpoint("unix:" + socket_path);
  if (!endpoint.ok()) {
    service.RequestStop();
    server.join();
    return false;
  }
  auto control = SeerClient::Connect("unix:" + socket_path);
  if (!control.ok()) {
    std::fprintf(stderr, "control connect: %s\n", control.status().message().c_str());
    service.RequestStop();
    server.join();
    return false;
  }

  std::atomic<bool> streaming{true};
  std::atomic<bool> failed{false};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> senders;
  senders.reserve(fleets.size());
  for (const std::vector<std::string>& frames : fleets) {
    senders.emplace_back([&, frames = &frames] {
      if (!SendAndBarrier(*endpoint, *frames)) {
        failed.store(true);
      }
    });
  }
  // Control-plane latency under load: ping until the fleet finishes.
  std::vector<uint64_t> ping_us;
  std::thread pinger([&] {
    while (streaming.load()) {
      const auto t0 = std::chrono::steady_clock::now();
      if (!control->Ping().ok()) {
        return;
      }
      ping_us.push_back(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - t0)
              .count()));
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (std::thread& t : senders) {
    t.join();
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  streaming.store(false);
  pinger.join();

  out->io_threads = service.io_threads();
  out->events_ingested = service.events_ingested();
  out->frames = service.frames_received();
  out->elapsed_sec = elapsed;
  out->refs_per_sec = elapsed > 0 ? (out->events_ingested / 2.0) / elapsed : 0.0;
  out->ping_p50_us = Percentile(ping_us, 0.50);
  out->ping_p99_us = Percentile(ping_us, 0.99);

  const Status stop = control->Shutdown();
  server.join();
  ::unlink(socket_path.c_str());
  if (!stop.ok()) {
    std::fprintf(stderr, "shutdown: %s\n", stop.message().c_str());
    return false;
  }
  if (!serve_status.ok()) {
    std::fprintf(stderr, "serve: %s\n", serve_status.message().c_str());
    return false;
  }
  if (failed.load() || service.protocol_errors() != 0) {
    std::fprintf(stderr, "sweep point io_threads=%d: sender failure or protocol errors\n",
                 io_threads);
    return false;
  }
  return true;
}

// Allocations per frame for the legacy owned-payload decode versus the
// arena path, on identical frames. Counts are steady-state: the arena is
// warmed first so its vectors hold capacity and every path is interned.
struct DecodeCosts {
  double legacy_allocs_per_frame = 0.0;
  double arena_allocs_per_frame = 0.0;
  size_t events_per_frame = 0;
};

DecodeCosts MeasureDecodeCosts() {
  constexpr size_t kRefs = 2048;
  constexpr int kIters = 50;
  const std::vector<TraceEvent> events = TenantEvents(0xdec0de, kRefs);
  const std::string frame = wire::EncodeFrame(wire::FrameType::kEvents, 1,
                                              wire::EncodeEvents(events));
  DecodeCosts costs;
  costs.events_per_frame = events.size();

  // Legacy: Frame with owned payload string, DecodeEvents -> TraceEvent
  // vector with two strings per event.
  {
    // Warm once so one-time lazy setup doesn't bill the steady state.
    wire::FrameDecoder warm;
    warm.Append(frame);
    (void)warm.Next();
    t_allocation_count = 0;
    g_count_allocations.store(true);
    for (int i = 0; i < kIters; ++i) {
      wire::FrameDecoder decoder;
      decoder.Append(frame);
      StatusOr<std::optional<wire::Frame>> next = decoder.Next();
      if (!next.ok() || !next->has_value()) {
        break;
      }
      StatusOr<std::vector<TraceEvent>> decoded = wire::DecodeEvents((*next)->payload);
      if (!decoded.ok()) {
        break;
      }
    }
    g_count_allocations.store(false);
    costs.legacy_allocs_per_frame = static_cast<double>(t_allocation_count) / kIters;
  }

  // Arena: NextView into the decoder's buffer, Decode into reused storage.
  {
    wire::FrameDecoder decoder;
    wire::EventArena arena;
    decoder.Append(frame);  // warm: interns every path, sizes the vectors
    if (StatusOr<std::optional<wire::FrameView>> v = decoder.NextView();
        v.ok() && v->has_value()) {
      (void)arena.Decode((*v)->payload);
    }
    t_allocation_count = 0;
    g_count_allocations.store(true);
    for (int i = 0; i < kIters; ++i) {
      decoder.Append(frame);
      StatusOr<std::optional<wire::FrameView>> view = decoder.NextView();
      if (!view.ok() || !view->has_value()) {
        break;
      }
      if (const Status decoded = arena.Decode((*view)->payload); !decoded.ok()) {
        break;
      }
    }
    g_count_allocations.store(false);
    costs.arena_allocs_per_frame = static_cast<double>(t_allocation_count) / kIters;
  }
  return costs;
}

}  // namespace
}  // namespace seer

int main() {
  using namespace seer;
  bench::PrintHeader(
      "Serving-plane scaling: sharded I/O threads, zero-copy ingest,\n"
      "control-plane latency under data-plane load");

  const size_t tenants = EnvSize("SEER_SVC_TENANTS", 8);
  const size_t refs_per_tenant =
      EnvSize("SEER_SVC_REFS", bench::FullScale() ? 80'000 : 20'000);
  constexpr int kMaxIoThreads = 8;
  std::printf("tenants: %zu, refs/tenant: %zu, host cpus: %d\n\n", tenants,
              refs_per_tenant, bench::HostCpus());
  bench::WarnIfScalingInvalid("service_scale", kMaxIoThreads);

  // Pre-encode every tenant's frames once; the sweep reuses them.
  std::vector<std::vector<std::string>> fleets;
  fleets.reserve(tenants);
  size_t total_frames = 0;
  for (size_t t = 0; t < tenants; ++t) {
    fleets.push_back(EncodeFrames(static_cast<TenantId>(t + 1),
                                  TenantEvents(0x5eed + static_cast<uint32_t>(t),
                                               refs_per_tenant)));
    total_frames += fleets.back().size();
  }
  std::printf("pre-encoded %zu frames across %zu connections\n\n", total_frames, tenants);

  std::vector<SweepPoint> sweep;
  for (const int io : {1, 2, 4, kMaxIoThreads}) {
    SweepPoint point;
    if (!RunSweepPoint(io, fleets, &point)) {
      return 1;
    }
    sweep.push_back(point);
    std::printf("io_threads=%d: %12.0f refs/s  (%.2f s, %" PRIu64 " events, %" PRIu64
                " frames)  ping p50 %" PRIu64 " us p99 %" PRIu64 " us\n",
                point.io_threads, point.refs_per_sec, point.elapsed_sec,
                point.events_ingested, point.frames, point.ping_p50_us,
                point.ping_p99_us);
  }

  const DecodeCosts costs = MeasureDecodeCosts();
  std::printf("\ndecode allocations/frame (%zu events/frame): legacy %.1f, arena %.1f\n",
              costs.events_per_frame, costs.legacy_allocs_per_frame,
              costs.arena_allocs_per_frame);

  const char* path = "BENCH_service.json";
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "service_scale: cannot write %s\n", path);
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"service_scale\",\n");
  bench::WriteJsonMachineMeta(out);
  bench::WriteJsonScalingValid(out, kMaxIoThreads);
  std::fprintf(out, "  \"tenants\": %zu,\n", tenants);
  std::fprintf(out, "  \"refs_per_tenant\": %zu,\n", refs_per_tenant);
  std::fprintf(out, "  \"io_sweep\": [\n");
  for (size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& p = sweep[i];
    std::fprintf(out,
                 "    {\"threads\": %d, \"refs_per_sec\": %.0f, \"elapsed_sec\": %.3f, "
                 "\"events_ingested\": %" PRIu64 ", \"frames_received\": %" PRIu64
                 ", \"ping_p50_us\": %" PRIu64 ", \"ping_p99_us\": %" PRIu64 "}%s\n",
                 p.io_threads, p.refs_per_sec, p.elapsed_sec, p.events_ingested, p.frames,
                 p.ping_p50_us, p.ping_p99_us, i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"decode\": {\n");
  std::fprintf(out, "    \"events_per_frame\": %zu,\n", costs.events_per_frame);
  std::fprintf(out, "    \"legacy_allocs_per_frame\": %.1f,\n",
               costs.legacy_allocs_per_frame);
  std::fprintf(out, "    \"arena_allocs_per_frame\": %.1f\n",
               costs.arena_allocs_per_frame);
  std::fprintf(out, "  }\n");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", path);
  return 0;
}
