// Hoard-fill plane bench — BENCH_hoard.json.
//
// Measures the incremental fill plane against two baselines:
//   * legacy    — the pre-refactor ChooseHoard, reimplemented here verbatim:
//                 std::set<PathId> selection, per-membership set lookups, a
//                 full member walk per cluster per fill;
//   * scratch   — the shipped plane with the aggregate cache disabled
//                 (every fill re-walks all clusters, single thread);
//   * incremental — the shipped plane warm, refilling after touching 1% of
//                 the files (the daemon's steady state).
//
// Plus a thread sweep of cold scratch fills (1/2/4/8) and an allocation
// count per warm fill. Every mode's selection is byte-compared against the
// legacy baseline; "selection_identical" in the JSON is the determinism
// gate — a perf win that changes the selection is a bug, not a win.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <new>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/hoard.h"

// --- allocation counting (same idiom as bench/overhead.cc) -------------------
namespace {
std::atomic<bool> g_count_allocations{false};
std::atomic<uint64_t> g_allocation_count{0};
}  // namespace

void* operator new(std::size_t size) {
  if (g_count_allocations.load(std::memory_order_relaxed)) {
    g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new[](std::size_t size) {
  if (g_count_allocations.load(std::memory_order_relaxed)) {
    g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace seer {
namespace {

constexpr int kFilesPerProject = 16;

int FileCount() {
  if (const char* v = std::getenv("SEER_BENCH_HOARD_FILES")) {
    const int n = std::atoi(v);
    if (n >= kFilesPerProject) {
      return n;
    }
  }
  return bench::FullScale() ? 32768 : 16384;
}

int Reps() { return bench::FullScale() ? 24 : 10; }

// The size oracle mirrors the shipped caller (src/sim/live_sim.cc): a
// PathId is rendered to its path string and looked up in a string-keyed
// stat table — the filesystem's interface speaks strings, not ids. That
// per-call cost (string materialisation + string hash) is exactly what the
// fill plane's PathId-indexed size column caches away. Read-only during
// fills, so pure and thread-safe per the SizeFn contract. ~64-576
// bytes/file.
uint64_t RawSize(PathId p) {
  return 64 + (static_cast<uint64_t>(p) * 2654435761ull) % 512;
}

std::unordered_map<std::string, uint64_t> BuildStatTable() {
  std::unordered_map<std::string, uint64_t> table;
  const size_t n = GlobalPaths().size();
  table.reserve(n);
  for (PathId p = 0; p < n; ++p) {
    table.emplace(std::string(GlobalPaths().PathOf(p)), RawSize(p));
  }
  return table;
}

// One process stream per project, two passes, so projects cluster cleanly
// (the LoadedCorrelator recipe from bench/overhead.cc).
std::unique_ptr<Correlator> BuildCorrelator(int n_files) {
  auto correlator = std::make_unique<Correlator>();
  Time t = 0;
  for (int pass = 0; pass < 2; ++pass) {
    for (int f = 0; f < n_files; ++f) {
      const int project = f / kFilesPerProject;
      FileReference ref;
      ref.pid = 1 + static_cast<Pid>(project);
      ref.kind = RefKind::kPoint;
      ref.path = GlobalPaths().Intern("/hf/p" + std::to_string(project) + "/f" +
                                      std::to_string(f % kFilesPerProject));
      ref.time = (t += 1000);
      correlator->OnReference(ref);
    }
  }
  return correlator;
}

// Touches ~1% of the files (recency only; membership untouched, so cached
// aggregates for the other 99% of clusters stay valid). A fresh pid per
// round keeps the churn stream from forging new relations.
void TouchOnePercent(Correlator* correlator, int n_files, int round) {
  static Time t = 1'000'000'000;
  const int step = 100;
  for (int f = round % step; f < n_files; f += step) {
    const int project = f / kFilesPerProject;
    FileReference ref;
    ref.pid = 1'000'000 + static_cast<Pid>(round);
    ref.kind = RefKind::kPoint;
    ref.path = GlobalPaths().Intern("/hf/p" + std::to_string(project) + "/f" +
                                    std::to_string(f % kFilesPerProject));
    ref.time = (t += 1000);
    correlator->OnReference(ref);
  }
}

// --- the pre-refactor fill, verbatim -----------------------------------------
// std::set selection, membership by set lookup, per-fill allocation of the
// ranking vector, a full member walk for every cluster. This is the
// baseline the aggregate cache and dense selection replace.
struct LegacySelection {
  std::set<PathId> files;
  uint64_t bytes_used = 0;
  size_t projects_hoarded = 0;
  size_t projects_skipped = 0;
};

LegacySelection LegacyChooseHoard(const Correlator& correlator,
                                  const ClusterSet& clusters,
                                  const std::set<PathId>& always_hoard,
                                  uint64_t budget_bytes,
                                  const std::function<uint64_t(PathId)>& size_of) {
  LegacySelection sel;
  auto add_file = [&](PathId path) {
    if (path == kInvalidPathId || sel.files.count(path) != 0) {
      return;
    }
    sel.bytes_used += size_of(path);
    sel.files.insert(path);
  };
  for (const PathId path : always_hoard) {
    add_file(path);
  }
  const FileTable& files = correlator.files();
  struct Ranked {
    uint64_t priority = 0;
    uint32_t index = 0;
  };
  std::vector<Ranked> ranked;
  ranked.reserve(clusters.clusters.size());
  for (uint32_t i = 0; i < clusters.clusters.size(); ++i) {
    uint64_t priority = 0;
    for (const FileId id : clusters.clusters[i].members) {
      priority = std::max(priority, files.Get(id).last_ref_seq);
    }
    ranked.push_back({priority, i});
  }
  std::sort(ranked.begin(), ranked.end(), [](const Ranked& a, const Ranked& b) {
    return a.priority > b.priority || (a.priority == b.priority && a.index < b.index);
  });
  for (const Ranked& r : ranked) {
    const Cluster& cluster = clusters.clusters[r.index];
    uint64_t extra = 0;
    for (const FileId id : cluster.members) {
      const FileRecord& rec = files.Get(id);
      if (rec.deleted || rec.path == kInvalidPathId) {
        continue;
      }
      if (sel.files.count(rec.path) == 0) {
        extra += size_of(rec.path);
      }
    }
    if (sel.bytes_used + extra > budget_bytes) {
      ++sel.projects_skipped;
      continue;
    }
    for (const FileId id : cluster.members) {
      const FileRecord& rec = files.Get(id);
      if (!rec.deleted && rec.path != kInvalidPathId) {
        add_file(rec.path);
      }
    }
    ++sel.projects_hoarded;
  }
  return sel;
}

struct FillCost {
  double fill_ns = 0.0;         // best-of-reps wall time per fill
  double allocs_per_fill = 0.0;  // averaged over the timed reps
};

template <typename Fn>
FillCost MeasureFill(int reps, const Fn& one_fill) {
  FillCost cost;
  cost.fill_ns = 1e18;
  g_allocation_count.store(0, std::memory_order_relaxed);
  uint64_t allocs_total = 0;
  for (int rep = 0; rep < reps; ++rep) {
    g_allocation_count.store(0, std::memory_order_relaxed);
    g_count_allocations.store(true, std::memory_order_relaxed);
    const auto start = std::chrono::steady_clock::now();
    one_fill(rep);
    const auto stop = std::chrono::steady_clock::now();
    g_count_allocations.store(false, std::memory_order_relaxed);
    allocs_total += g_allocation_count.load(std::memory_order_relaxed);
    cost.fill_ns = std::min(
        cost.fill_ns,
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start).count()));
  }
  cost.allocs_per_fill = static_cast<double>(allocs_total) / reps;
  return cost;
}

bool SameSelection(const LegacySelection& legacy, const HoardSelection& got) {
  if (legacy.bytes_used != got.bytes_used ||
      legacy.projects_hoarded != got.projects_hoarded ||
      legacy.projects_skipped != got.projects_skipped ||
      legacy.files.size() != got.sorted_ids.size()) {
    return false;
  }
  // std::set iterates ascending; sorted_ids is ascending by construction.
  return std::equal(legacy.files.begin(), legacy.files.end(), got.sorted_ids.begin());
}

void RunHoardFillBench() {
  const int n_files = FileCount();
  const int reps = Reps();
  bench::PrintHeader("Hoard-fill plane: epoch-cached aggregates vs scratch vs legacy");

  auto correlator = BuildCorrelator(n_files);
  const ClusterSet clusters = correlator->BuildClusters();
  const std::unordered_map<std::string, uint64_t> stat_table = BuildStatTable();
  const auto SizeOf = [&stat_table](PathId p) -> uint64_t {
    const auto it = stat_table.find(std::string(GlobalPaths().PathOf(p)));
    return it != stat_table.end() ? it->second : 64;
  };
  // Budget fits roughly a quarter of the total bytes, so the greedy
  // selection neither degenerates to "take everything" nor to "skip
  // everything" — both would flatter the skip-cost optimisation.
  uint64_t total_bytes = 0;
  for (FileId id = 0; id < correlator->files().size(); ++id) {
    const FileRecord& rec = correlator->files().Get(id);
    if (!rec.deleted && rec.path != kInvalidPathId) {
      total_bytes += SizeOf(rec.path);
    }
  }
  const uint64_t budget = total_bytes / 4;
  const std::set<PathId> always;

  std::printf("files=%d projects=%d clusters=%zu budget=%llu of %llu bytes\n",
              n_files, n_files / kFilesPerProject, clusters.clusters.size(),
              static_cast<unsigned long long>(budget),
              static_cast<unsigned long long>(total_bytes));

  // --- legacy baseline ------------------------------------------------------
  LegacySelection legacy_sel;
  const FillCost legacy = MeasureFill(reps, [&](int) {
    legacy_sel = LegacyChooseHoard(*correlator, clusters, always, budget, SizeOf);
  });

  // --- scratch: shipped plane, cache disabled, single thread ----------------
  HoardManager scratch_mgr(budget);
  scratch_mgr.set_threads(1);
  scratch_mgr.set_incremental_fill(false);
  HoardSelection scratch_sel;
  scratch_mgr.ChooseHoard(*correlator, clusters, always, SizeOf);  // warm scratch vectors
  const FillCost scratch = MeasureFill(reps, [&](int) {
    scratch_sel = scratch_mgr.ChooseHoard(*correlator, clusters, always, SizeOf);
  });

  // --- incremental: warm cache, 1% of the files touched between fills ------
  HoardManager inc_mgr(budget);
  inc_mgr.set_threads(1);
  inc_mgr.ChooseHoard(*correlator, clusters, always, SizeOf);  // prime the cache
  HoardSelection inc_sel;
  const FillCost incremental = MeasureFill(reps, [&](int rep) {
    inc_sel = inc_mgr.ChooseHoard(*correlator, clusters, always, SizeOf);
    (void)rep;
  });
  // Re-measure with the touch outside the timed+counted window each rep:
  // the touch itself is ingest work, not fill work.
  FillCost incremental_touched;
  incremental_touched.fill_ns = 1e18;
  {
    uint64_t allocs_total = 0;
    for (int rep = 0; rep < reps; ++rep) {
      TouchOnePercent(correlator.get(), n_files, rep);
      g_allocation_count.store(0, std::memory_order_relaxed);
      g_count_allocations.store(true, std::memory_order_relaxed);
      const auto start = std::chrono::steady_clock::now();
      inc_sel = inc_mgr.ChooseHoard(*correlator, clusters, always, SizeOf);
      const auto stop = std::chrono::steady_clock::now();
      g_count_allocations.store(false, std::memory_order_relaxed);
      allocs_total += g_allocation_count.load(std::memory_order_relaxed);
      incremental_touched.fill_ns = std::min(
          incremental_touched.fill_ns,
          static_cast<double>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start).count()));
    }
    incremental_touched.allocs_per_fill = static_cast<double>(allocs_total) / reps;
  }
  const HoardFillStats inc_stats = inc_mgr.last_fill_stats();

  // --- identity: every mode must produce the same selection -----------------
  // (The touched rounds changed recency, so re-fill scratch and legacy on
  // the current state before comparing.)
  const LegacySelection legacy_now =
      LegacyChooseHoard(*correlator, clusters, always, budget, SizeOf);
  scratch_sel = scratch_mgr.ChooseHoard(*correlator, clusters, always, SizeOf);
  bool identical = SameSelection(legacy_now, scratch_sel) &&
                   SameSelection(legacy_now, inc_sel) &&
                   scratch_sel.files == inc_sel.files;

  // --- thread sweep: cold scratch fills/s -----------------------------------
  constexpr int kMaxSweepThreads = 8;
  struct SweepPoint {
    int threads = 0;
    double fills_per_sec = 0.0;
  };
  std::vector<SweepPoint> sweep;
  for (const int threads : {1, 2, 4, kMaxSweepThreads}) {
    HoardManager m(budget);
    m.set_threads(threads);
    m.ChooseHoard(*correlator, clusters, always, SizeOf);  // warm scratch vectors
    double best_ns = 1e18;
    HoardSelection got;
    for (int rep = 0; rep < reps; ++rep) {
      m.InvalidateFillCache();  // every rep is a cold, full re-walk
      const auto start = std::chrono::steady_clock::now();
      got = m.ChooseHoard(*correlator, clusters, always, SizeOf);
      const auto stop = std::chrono::steady_clock::now();
      best_ns = std::min(
          best_ns,
          static_cast<double>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start).count()));
    }
    identical = identical && got.files == inc_sel.files;
    sweep.push_back({threads, best_ns > 0 ? 1e9 / best_ns : 0.0});
  }
  bench::WarnIfScalingInvalid("hoard_fill", kMaxSweepThreads);

  // --- JSON ------------------------------------------------------------------
  const char* path = "BENCH_hoard.json";
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "hoard_fill: cannot write %s\n", path);
    return;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"hoard_fill\",\n");
  bench::WriteJsonMachineMeta(out);
  bench::WriteJsonScalingValid(out, kMaxSweepThreads);
  std::fprintf(out, "  \"files\": %d,\n", n_files);
  std::fprintf(out, "  \"clusters\": %zu,\n", clusters.clusters.size());
  std::fprintf(out, "  \"budget_bytes\": %llu,\n",
               static_cast<unsigned long long>(budget));
  std::fprintf(out, "  \"legacy\": {\"fill_ns\": %.0f, \"allocs_per_fill\": %.1f},\n",
               legacy.fill_ns, legacy.allocs_per_fill);
  std::fprintf(out, "  \"scratch\": {\"fill_ns\": %.0f, \"allocs_per_fill\": %.1f},\n",
               scratch.fill_ns, scratch.allocs_per_fill);
  std::fprintf(out,
               "  \"incremental_1pct\": {\"fill_ns\": %.0f, \"allocs_per_fill\": %.1f, "
               "\"dirty_clusters\": %zu, \"reused_aggregates\": %zu, "
               "\"touched_files\": %zu},\n",
               incremental_touched.fill_ns, incremental_touched.allocs_per_fill,
               inc_stats.dirty_clusters, inc_stats.reused_aggregates,
               inc_stats.touched_files);
  std::fprintf(out, "  \"incremental_noop\": {\"fill_ns\": %.0f, \"allocs_per_fill\": %.1f},\n",
               incremental.fill_ns, incremental.allocs_per_fill);
  std::fprintf(out, "  \"incremental_vs_scratch\": %.4f,\n",
               scratch.fill_ns > 0 ? incremental_touched.fill_ns / scratch.fill_ns : 0.0);
  std::fprintf(out, "  \"threads\": [\n");
  for (size_t i = 0; i < sweep.size(); ++i) {
    std::fprintf(out, "    {\"threads\": %d, \"fills_per_sec\": %.1f}%s\n",
                 sweep[i].threads, sweep[i].fills_per_sec,
                 i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"selection_identical\": %s\n", identical ? "true" : "false");
  std::fprintf(out, "}\n");
  std::fclose(out);

  std::printf("\nwrote %s:\n", path);
  std::printf("  legacy      : %10.0f ns/fill  %8.1f allocs/fill\n", legacy.fill_ns,
              legacy.allocs_per_fill);
  std::printf("  scratch     : %10.0f ns/fill  %8.1f allocs/fill\n", scratch.fill_ns,
              scratch.allocs_per_fill);
  std::printf("  incremental : %10.0f ns/fill  %8.1f allocs/fill  (1%% touch: %zu of %zu "
              "clusters dirty)\n",
              incremental_touched.fill_ns, incremental_touched.allocs_per_fill,
              inc_stats.dirty_clusters, inc_stats.clusters);
  std::printf("  incremental/scratch ratio: %.3f\n",
              scratch.fill_ns > 0 ? incremental_touched.fill_ns / scratch.fill_ns : 0.0);
  for (const SweepPoint& p : sweep) {
    std::printf("  scratch threads=%d: %10.1f fills/sec\n", p.threads, p.fills_per_sec);
  }
  std::printf("  selection identical across all modes/threads: %s\n",
              identical ? "yes" : "NO (BUG)");
}

}  // namespace
}  // namespace seer

int main() {
  seer::RunHoardFillBench();
  return 0;
}
