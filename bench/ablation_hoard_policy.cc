// Ablation — the whole-projects-only rule (Section 2).
//
// The paper hoards only complete projects "under the assumption that
// partial projects are not sufficient to make progress". This bench tests
// that assumption on the live-usage simulation of the overloaded machine F
// (the only machine with real hoard pressure): whole-project fill versus a
// partial fill that packs the most recently used members of an oversized
// project into the remaining budget.
//
// Measured result (see EXPERIMENTS.md): on this workload partial fill
// somewhat REDUCES misses — the packed most-recent members are exactly the
// files the simulated user touches. That is an honest limitation of the
// simulation: our user model has no hard dependency on whole-project
// completeness (a build that needs every header), which is precisely the
// dependency the paper's whole-projects rule defends against.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/sim/live_sim.h"

namespace seer {
namespace {

void Run(const char* label, bool partial) {
  const MachineProfile profile = GetMachineProfile('F');
  size_t any = 0;
  size_t misses = 0;
  size_t discs = 0;
  size_t work_misses = 0;  // severities 1-2: mid-task interruptions
  for (int seed = 1; seed <= bench::SeedCount(); ++seed) {
    LiveSimConfig config;
    config.seed = static_cast<uint64_t>(seed) * 7001;
    config.disconnections_override = bench::ScaledDisconnections(profile.disconnections);
    config.allow_partial_projects = partial;
    const LiveSimResult r = RunLiveUsage(profile, config);
    discs += r.disconnections.size();
    any += r.failures_any_severity();
    for (const auto& d : r.disconnections) {
      misses += d.misses.size();
      for (const auto& m : d.misses) {
        if (!m.automatic && (m.severity == MissSeverity::kTaskChange ||
                             m.severity == MissSeverity::kActivityChange)) {
          ++work_misses;
        }
      }
    }
  }
  std::printf("%-24s failed disconnections %3zu/%zu   total misses %4zu   "
              "mid-task (sev 1-2) %4zu\n",
              label, any, discs, misses, work_misses);
}

}  // namespace
}  // namespace seer

int main() {
  using namespace seer;
  bench::PrintHeader(
      "Hoard policy ablation (Section 2): whole projects vs partial fill\n"
      "on machine F at its deliberately small 50 MB hoard");
  Run("whole projects (paper)", false);
  Run("partial fill (ablation)", true);
  bench::PrintRule();
  std::printf(
      "note: partial fill wins here because the simulated user only misses\n"
      "files they directly touch; the paper's whole-projects rule guards the\n"
      "case this simulation cannot express — tasks (builds) that need every\n"
      "member of a project to make any progress at all.\n");
  return 0;
}
