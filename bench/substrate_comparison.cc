// Replication-substrate comparison (Sections 2, 4.4).
//
// SEER is substrate-portable: the same hoarding decisions ride on RUMOR
// (peer reconciliation, no remote access, misses invisible to the
// substrate), CHEAP RUMOR (master-slave), or CODA (remote access +
// callbacks, misses directly observable). This bench runs the identical
// live-usage workload over each substrate and reports what differs — the
// transport and conflict behaviour — and what must not differ — the
// severity-0 guarantee and the general miss picture, which come from SEER,
// not the substrate.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/sim/live_sim.h"

namespace seer {
namespace {

void Run(ReplicatorKind kind, const char* label) {
  const MachineProfile profile = GetMachineProfile('F');
  LiveSimConfig config;
  config.seed = 9090;
  config.replicator = kind;
  config.disconnections_override = bench::ScaledDisconnections(profile.disconnections);
  const LiveSimResult r = RunLiveUsage(profile, config);

  const ReplicationStats& s = r.replication;
  size_t misses = 0;
  for (const auto& d : r.disconnections) {
    misses += d.misses.size();
  }
  std::printf("%-12s fetched %5llu (%6.1f MB)  evicted %5llu  remote %4llu  "
              "push %4llu  pull %3llu  conflicts %2llu | failed discs %zu, misses %zu, sev0 %zu\n",
              label, static_cast<unsigned long long>(s.files_fetched),
              static_cast<double>(s.bytes_fetched) / 1048576.0,
              static_cast<unsigned long long>(s.files_evicted),
              static_cast<unsigned long long>(s.remote_accesses),
              static_cast<unsigned long long>(s.pushed_updates),
              static_cast<unsigned long long>(s.pulled_updates),
              static_cast<unsigned long long>(s.conflicts_detected), r.failures_any_severity(),
              misses, r.failures_by_severity()[0]);
}

}  // namespace
}  // namespace seer

int main() {
  using namespace seer;
  bench::PrintHeader(
      "Replication substrate comparison, machine F live usage (identical\n"
      "workload and hoard decisions on all three substrates)");
  Run(ReplicatorKind::kRumor, "rumor");
  Run(ReplicatorKind::kCheapRumor, "cheap-rumor");
  Run(ReplicatorKind::kCoda, "coda");
  bench::PrintRule();
  std::printf(
      "expected: coda shows remote accesses (connected misses serviced and\n"
      "cached); rumor/cheap-rumor show none; conflict counts stay small and\n"
      "equal across substrates (same update pattern); severity-0 is zero\n"
      "everywhere — the guarantee comes from SEER's critical-file handling,\n"
      "not from the substrate.\n");
  return 0;
}
