// Section 3.3.2 — Clustering time complexity.
//
// SEER's variation of Jarvis-Patrick avoids the O(N^2) all-pairs neighbor
// comparison by reusing the relation table's per-file lists, giving O(N)
// time. This bench measures wall-clock clustering time across a range of
// file counts and prints the per-file cost, which should stay roughly flat
// as N grows (the O(N) claim), unlike a quadratic algorithm whose per-file
// cost would grow linearly.
#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/correlator.h"

namespace seer {
namespace {

std::unique_ptr<Correlator> LoadedCorrelator(int n_files, int project_size) {
  auto correlator = std::make_unique<Correlator>();
  Time t = 0;
  for (int pass = 0; pass < 2; ++pass) {
    for (int f = 0; f < n_files; ++f) {
      FileReference ref;
      ref.pid = 1 + f / project_size;  // one process stream per project
      ref.kind = RefKind::kPoint;
      ref.path = GlobalPaths().Intern("/p" + std::to_string(f / project_size) + "/f" +
                                      std::to_string(f % project_size));
      ref.time = (t += 1000);
      correlator->OnReference(ref);
    }
  }
  return correlator;
}

}  // namespace
}  // namespace seer

int main() {
  using namespace seer;
  bench::PrintHeader(
      "Clustering scalability (Section 3.3.2): per-file cost should stay\n"
      "roughly flat with N (the O(N) shared-neighbor variation), far below\n"
      "what the original O(N^2) Jarvis-Patrick formulation would cost");

  std::printf("%10s %12s %14s %10s\n", "files", "clusters", "time(ms)", "us/file");
  bench::PrintRule();

  const int max_n = bench::FullScale() ? 65'536 : 16'384;
  for (int n = 1024; n <= max_n; n *= 2) {
    auto correlator = LoadedCorrelator(n, 16);
    const auto start = std::chrono::steady_clock::now();
    const ClusterSet clusters = correlator->BuildClusters();
    const auto stop = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration_cast<std::chrono::microseconds>(stop - start).count() / 1000.0;
    std::printf("%10d %12zu %14.2f %10.2f\n", n, clusters.clusters.size(), ms,
                ms * 1000.0 / n);
  }

  bench::PrintRule();
  std::printf(
      "paper reference: ~2 CPU minutes for a typical user's ~20,000 files\n"
      "on a 133 MHz Pentium; a rare, deferrable event.\n");
  return 0;
}
