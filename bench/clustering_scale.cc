// Section 3.3.2 — Clustering time complexity, plus the parallel and
// incremental engine.
//
// SEER's variation of Jarvis-Patrick avoids the O(N^2) all-pairs neighbor
// comparison by reusing the relation table's per-file lists, giving O(N)
// time. This bench measures wall-clock clustering time across a range of
// file counts in three configurations:
//
//   serial     — one thread, full rescore (the pre-parallel baseline);
//   parallel   — the pool's thread count (SEER_THREADS or all cores),
//                full rescore;
//   incremental— warm edge cache, ~1% of files touched with fresh
//                observations, rebuild rescoring only the dirty set.
//
// All three produce bit-identical ClusterSets (checked here); per-file cost
// should stay roughly flat as N grows (the O(N) claim).
//
// In addition to the interactive table, the binary always writes
// BENCH_clustering.json — rows of {files, clusters, serial_ms, parallel_ms,
// speedup} plus the incremental measurement — so future changes have a
// machine-readable perf trajectory to compare against.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/correlator.h"
#include "src/util/thread_pool.h"

namespace seer {
namespace {

constexpr int kProjectSize = 16;

std::unique_ptr<Correlator> LoadedCorrelator(int n_files, int project_size) {
  auto correlator = std::make_unique<Correlator>();
  Time t = 0;
  for (int pass = 0; pass < 2; ++pass) {
    for (int f = 0; f < n_files; ++f) {
      FileReference ref;
      ref.pid = 1 + f / project_size;  // one process stream per project
      ref.kind = RefKind::kPoint;
      ref.path = GlobalPaths().Intern("/p" + std::to_string(f / project_size) + "/f" +
                                      std::to_string(f % project_size));
      ref.time = (t += 1000);
      correlator->OnReference(ref);
    }
  }
  return correlator;
}

double TimedBuildMs(Correlator* correlator, ClusterSet* out) {
  const auto start = std::chrono::steady_clock::now();
  ClusterSet clusters = correlator->BuildClusters();
  const auto stop = std::chrono::steady_clock::now();
  if (out != nullptr) {
    *out = std::move(clusters);
  }
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

bool SameClusters(const ClusterSet& a, const ClusterSet& b) {
  if (a.clusters.size() != b.clusters.size()) {
    return false;
  }
  for (size_t i = 0; i < a.clusters.size(); ++i) {
    if (a.clusters[i].members != b.clusters[i].members) {
      return false;
    }
  }
  return true;
}

// Touches ~1% of files with fresh cross-project observations: one shared
// reference stream over every touched file creates new neighbor-list
// entries (set changes), dirtying the touched files and their reverse
// neighbors — the steady-state "a bit of work happened since the last
// refill" shape.
int TouchOnePercent(Correlator* correlator, int n_files, Time* t) {
  const int touched = n_files / 100 > 0 ? n_files / 100 : 1;
  const int stride = n_files / touched;
  for (int k = 0; k < touched; ++k) {
    const int f = k * stride;
    FileReference ref;
    ref.pid = 77'000;  // one fresh stream crossing project boundaries
    ref.kind = RefKind::kPoint;
    ref.path = GlobalPaths().Intern("/p" + std::to_string(f / kProjectSize) + "/f" +
                                    std::to_string(f % kProjectSize));
    ref.time = (*t += 1000);
    correlator->OnReference(ref);
  }
  return touched;
}

}  // namespace
}  // namespace seer

int main() {
  using namespace seer;
  const int threads = bench::EffectiveSeerThreads();
  // The serial column pins 1 thread, so the sweep's width is the parallel
  // column's thread count: speedup numbers are only meaningful when the
  // host really has that many cores AND more than one thread is in play
  // (at threads=1 the "parallel" column is just the serial build again).
  const bool scaling_valid =
      bench::WarnIfScalingInvalid("clustering_scale", threads) && threads >= 2;
  bench::PrintHeader(
      "Clustering scalability (Section 3.3.2): per-file cost should stay\n"
      "roughly flat with N (the O(N) shared-neighbor variation); parallel\n"
      "scoring and incremental rescore cut the constant");
  std::printf("threads for the parallel column: %d (override with SEER_THREADS)\n\n", threads);

  std::printf("%8s %9s %11s %12s %8s %9s\n", "files", "clusters", "serial(ms)",
              "parallel(ms)", "speedup", "us/file");
  bench::PrintRule();

  const int reps = bench::FullScale() ? 3 : 2;
  const int max_n = bench::FullScale() ? 65'536 : 16'384;

  struct Row {
    int files = 0;
    size_t clusters = 0;
    double serial_ms = 0.0;
    double parallel_ms = 0.0;
  };
  std::vector<Row> rows;
  bool identical = true;

  for (int n = 1024; n <= max_n; n *= 2) {
    auto correlator = LoadedCorrelator(n, kProjectSize);
    correlator->SetIncrementalClustering(false);

    Row row;
    row.files = n;
    ClusterSet serial_set;
    ClusterSet parallel_set;
    for (int r = 0; r < reps; ++r) {
      correlator->SetClusterThreads(1);
      const double s = TimedBuildMs(correlator.get(), &serial_set);
      correlator->SetClusterThreads(threads);
      const double p = TimedBuildMs(correlator.get(), &parallel_set);
      row.serial_ms = r == 0 ? s : std::min(row.serial_ms, s);
      row.parallel_ms = r == 0 ? p : std::min(row.parallel_ms, p);
    }
    row.clusters = parallel_set.clusters.size();
    identical = identical && SameClusters(serial_set, parallel_set);

    std::printf("%8d %9zu %11.2f %12.2f %7.2fx %9.2f\n", row.files, row.clusters,
                row.serial_ms, row.parallel_ms, row.serial_ms / row.parallel_ms,
                row.parallel_ms * 1000.0 / row.files);
    rows.push_back(row);
  }

  // Incremental rescore at the largest N: warm the cache with a full
  // build, touch ~1% of files, rebuild.
  const int n = max_n;
  auto correlator = LoadedCorrelator(n, kProjectSize);
  correlator->SetClusterThreads(threads);
  (void)correlator->BuildClusters();  // warm the edge cache (full build)
  Time t = 1'000'000'000;
  const int touched = TouchOnePercent(correlator.get(), n, &t);
  ClusterSet incremental_set;
  const double incremental_ms = TimedBuildMs(correlator.get(), &incremental_set);
  const ClusterBuildStats inc_stats = correlator->last_cluster_stats();
  // Same state, full rescore: the apples-to-apples baseline and the
  // determinism cross-check for the incremental result.
  correlator->SetIncrementalClustering(false);
  ClusterSet full_after;
  const double full_after_ms = TimedBuildMs(correlator.get(), &full_after);
  identical = identical && SameClusters(incremental_set, full_after);

  bench::PrintRule();
  std::printf(
      "incremental @ N=%d: touched %d files (+%zu dirty, %zu rescored),\n"
      "  full build %.2f ms, incremental rebuild %.2f ms (%.1f%% of full)\n"
      "  phase split: pack %.2f, plan %.2f, score %.2f, merge %.2f ms\n",
      n, touched, inc_stats.dirty_files, inc_stats.files_rescored, full_after_ms,
      incremental_ms, 100.0 * incremental_ms / full_after_ms, inc_stats.pack_ms,
      inc_stats.plan_ms, inc_stats.score_ms, inc_stats.merge_ms);
  std::printf("outputs identical across serial/parallel/incremental: %s\n",
              identical ? "yes" : "NO — BUG");
  std::printf(
      "paper reference: ~2 CPU minutes for a typical user's ~20,000 files\n"
      "on a 133 MHz Pentium; a rare, deferrable event.\n");

  const char* path = "BENCH_clustering.json";
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "clustering_scale: cannot write %s\n", path);
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"clustering_scale\",\n");
  bench::WriteJsonMachineMeta(out);
  std::fprintf(out, "  \"scaling_valid\": %s,\n", scaling_valid ? "true" : "false");
  std::fprintf(out, "  \"threads\": %d,\n", threads);
  std::fprintf(out, "  \"outputs_identical\": %s,\n", identical ? "true" : "false");
  std::fprintf(out, "  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(out,
                 "    {\"files\": %d, \"clusters\": %zu, \"serial_ms\": %.3f, "
                 "\"parallel_ms\": %.3f, \"speedup\": %.3f, \"us_per_file\": %.3f}%s\n",
                 row.files, row.clusters, row.serial_ms, row.parallel_ms,
                 row.serial_ms / row.parallel_ms, row.parallel_ms * 1000.0 / row.files,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"incremental\": {\n");
  std::fprintf(out, "    \"files\": %d,\n", n);
  std::fprintf(out, "    \"touched\": %d,\n", touched);
  std::fprintf(out, "    \"dirty_files\": %zu,\n", inc_stats.dirty_files);
  std::fprintf(out, "    \"files_rescored\": %zu,\n", inc_stats.files_rescored);
  std::fprintf(out, "    \"full_ms\": %.3f,\n", full_after_ms);
  std::fprintf(out, "    \"incremental_ms\": %.3f,\n", incremental_ms);
  std::fprintf(out, "    \"ratio\": %.4f\n", incremental_ms / full_after_ms);
  std::fprintf(out, "  }\n");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", path);
  return identical ? 0 : 1;
}
