// Section 5.3 — Implementation cost microbenchmarks.
//
// The paper reports: ~35 us of CPU per traced system call on a 133 MHz
// Pentium (tracing must be much cheaper than the open itself), about two
// minutes of CPU to form clusters (rare, deferrable), and roughly 1 KB of
// memory per tracked file. These google-benchmark microbenchmarks measure
// the same three costs in our implementation; the expectation is the
// *relationship* (tracing nanoseconds-to-microseconds per call, clustering
// seconds-scale at tens of thousands of files, memory ~hundreds of bytes
// to ~1KB per file), not the absolute 1997 numbers.
//
// In addition to the interactive tables, the binary always writes
// BENCH_overhead.json: ns/reference and allocations/reference for the old
// string-identity data plane (emulated) versus the interned-PathId plane,
// plus the async queue's high-water mark, so future changes have a
// machine-readable perf trajectory to compare against.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <new>
#include <random>
#include <string>
#include <thread>
#include <unordered_map>

#include <filesystem>

#include "bench/bench_util.h"
#include "src/core/async_pipeline.h"
#include "src/core/correlator.h"
#include "src/core/hoard.h"
#include "src/core/snapshot_codec.h"
#include "src/core/snapshot_store.h"
#include "src/core/wal.h"
#include "src/util/fs.h"
#include "src/util/thread_pool.h"
#include "src/observer/observer.h"
#include "src/observer/sink_chain.h"
#include "src/process/syscall_tracer.h"
#include "src/workload/environment.h"
#include "src/workload/user_model.h"

// --- allocation counting -----------------------------------------------------
//
// Per-thread counter bumped by the replaced global operator new. Thread-local
// so the producer side of the async pipeline can be measured in isolation:
// the consumer thread's table updates are allowed to allocate, the enqueue
// path is not.
namespace {
std::atomic<bool> g_count_allocations{false};
thread_local uint64_t t_allocation_count = 0;
// Process-wide counter for the ingest section: the parallel measure phase
// allocates (if at all) on pool workers, which the thread-local counter
// cannot see. Separate flag so the single-thread plane measurements keep
// their historical cost profile (one relaxed load, no atomic add).
std::atomic<bool> g_count_allocations_global{false};
std::atomic<uint64_t> g_global_allocation_count{0};
}  // namespace

void* operator new(std::size_t size) {
  if (g_count_allocations.load(std::memory_order_relaxed)) {
    ++t_allocation_count;
  }
  if (g_count_allocations_global.load(std::memory_order_relaxed)) {
    g_global_allocation_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new[](std::size_t size) {
  if (g_count_allocations.load(std::memory_order_relaxed)) {
    ++t_allocation_count;
  }
  if (g_count_allocations_global.load(std::memory_order_relaxed)) {
    g_global_allocation_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace seer {
namespace {

// Full per-syscall pipeline cost: tracer -> observer -> correlator.
void BM_TracedOpenClose(benchmark::State& state) {
  SimFilesystem fs;
  fs.MkdirAll("/home/u/proj");
  for (int i = 0; i < 64; ++i) {
    fs.CreateFile("/home/u/proj/f" + std::to_string(i), 1000);
  }
  ProcessTable procs;
  SimClock clock;
  SyscallTracer tracer(&fs, &procs, &clock);
  Observer observer(ObserverConfig{}, &fs);
  Correlator correlator;
  observer.set_sink(&correlator);
  tracer.AddSink(&observer);
  const Pid pid = procs.SpawnInit(1000, "/home/u/proj");
  int i = 0;
  for (auto _ : state) {
    const auto r = tracer.Open(pid, "f" + std::to_string(i++ % 64), false);
    tracer.Close(pid, r.fd);
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_TracedOpenClose);

// Tracer alone (no SEER attached) — the baseline syscall cost.
void BM_UntracedOpenClose(benchmark::State& state) {
  SimFilesystem fs;
  fs.MkdirAll("/home/u");
  fs.CreateFile("/home/u/f", 1000);
  ProcessTable procs;
  SimClock clock;
  SyscallTracer tracer(&fs, &procs, &clock);
  const Pid pid = procs.SpawnInit(1000, "/home/u");
  for (auto _ : state) {
    const auto r = tracer.Open(pid, "f", false);
    tracer.Close(pid, r.fd);
  }
}
BENCHMARK(BM_UntracedOpenClose);

// Builds a correlator loaded with `n_files` interrelated files.
std::unique_ptr<Correlator> LoadedCorrelator(int n_files) {
  auto correlator = std::make_unique<Correlator>();
  // 16-file "projects": realistic cluster granularity.
  Time t = 0;
  for (int pass = 0; pass < 2; ++pass) {
    // Two passes so every pair inside a project has observations; each
    // project runs in its own process stream.
    for (int f = 0; f < n_files; ++f) {
      const int project = f / 16;
      FileReference ref;
      ref.pid = 1 + project;
      ref.kind = RefKind::kPoint;
      ref.path =
          GlobalPaths().Intern("/p" + std::to_string(project) + "/f" + std::to_string(f % 16));
      ref.time = (t += 1000);
      correlator->OnReference(ref);
    }
  }
  return correlator;
}

// Clustering cost as a function of file count (the paper: ~2 CPU minutes
// for ~20,000 files on 1997 hardware; ours should be far faster and scale
// linearly — see also bench/clustering_scale).
void BM_BuildClusters(benchmark::State& state) {
  const int n_files = static_cast<int>(state.range(0));
  auto correlator = LoadedCorrelator(n_files);
  for (auto _ : state) {
    benchmark::DoNotOptimize(correlator->BuildClusters());
  }
  state.SetComplexityN(n_files);
}
BENCHMARK(BM_BuildClusters)->Range(1 << 8, 1 << 14)->Complexity(benchmark::oN);

// Hoard selection on top of clustering.
void BM_ChooseHoard(benchmark::State& state) {
  auto correlator = LoadedCorrelator(4096);
  const ClusterSet clusters = correlator->BuildClusters();
  HoardManager manager(64ull << 20);
  const std::set<PathId> always;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        manager.ChooseHoard(*correlator, clusters, always, [](PathId) { return 14'000ull; }));
  }
}
BENCHMARK(BM_ChooseHoard);

// Memory per tracked file (paper: ~1 KB/file, deliberately unoptimised).
void BM_MemoryPerFile(benchmark::State& state) {
  const int n_files = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto correlator = LoadedCorrelator(n_files);
    benchmark::DoNotOptimize(correlator->MemoryBytes());
  }
  auto correlator = LoadedCorrelator(n_files);
  state.counters["bytes_per_file"] =
      static_cast<double>(correlator->MemoryBytes()) / static_cast<double>(n_files);
}
BENCHMARK(BM_MemoryPerFile)->Arg(1 << 12)->Iterations(1);

// End-to-end workload generation rate (events/second of simulator time).
void BM_WorkloadGeneration(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    SimFilesystem fs;
    Rng rng(7);
    const UserEnvironment env = BuildEnvironment(&fs, EnvironmentConfig{}, &rng);
    ProcessTable procs;
    SimClock clock;
    SyscallTracer tracer(&fs, &procs, &clock);
    Observer observer(ObserverConfig{}, &fs);
    Correlator correlator;
    observer.set_sink(&correlator);
    tracer.AddSink(&observer);
    UserModel user(&tracer, &env, UserModelConfig{}, 7);
    state.ResumeTiming();
    user.RunActiveHours(0.2);
    state.counters["events"] = static_cast<double>(tracer.events_emitted());
  }
}
BENCHMARK(BM_WorkloadGeneration)->Unit(benchmark::kMillisecond);

// --- BENCH_overhead.json -----------------------------------------------------

constexpr int kJsonFiles = 1024;       // distinct paths in the working set
constexpr int kJsonPasses = 64;        // measured references = files * passes

// Realistic-length absolute paths: long enough that the string plane's
// per-reference copy cannot hide in the small-string optimisation.
std::string JsonPath(int f) {
  return "/home/user/projects/project" + std::to_string(f / 16) + "/src/module/file" +
         std::to_string(f % 16) + "_" + std::to_string(f) + ".c";
}

struct PlaneCost {
  double ns_per_reference = 0.0;
  double allocations_per_reference = 0.0;
};

// Emulates the pre-refactor data plane: every reference carries its path as
// a std::string across the sink boundary, and the consumer resolves file
// identity with a string-keyed hash map. The measured loop is the producer
// side: build the message (string copy), queue it (mutex + deque of
// string-bearing messages), resolve identity by string hash.
PlaneCost MeasureStringPlane() {
  struct StringMessage {
    Pid pid = 0;
    std::string path;
    Time time = 0;
  };
  std::unordered_map<std::string, uint32_t> identity;
  std::mutex queue_mutex;
  std::deque<StringMessage> queue;
  uint32_t next_id = 0;

  // Warm-up pass: identity map fully populated, as in steady state.
  for (int f = 0; f < kJsonFiles; ++f) {
    identity.emplace(JsonPath(f), next_id++);
  }

  const auto start = std::chrono::steady_clock::now();
  t_allocation_count = 0;
  g_count_allocations.store(true, std::memory_order_relaxed);
  uint64_t sink = 0;
  for (int pass = 0; pass < kJsonPasses; ++pass) {
    for (int f = 0; f < kJsonFiles; ++f) {
      StringMessage m;
      m.pid = 1;
      m.path = JsonPath(f);  // the per-reference string copy of the old plane
      m.time = static_cast<Time>(pass) * kJsonFiles + f;
      sink += identity.find(m.path)->second;
      {
        std::lock_guard<std::mutex> lock(queue_mutex);
        queue.push_back(std::move(m));
        if (queue.size() > 64) {
          queue.pop_front();
        }
      }
    }
  }
  g_count_allocations.store(false, std::memory_order_relaxed);
  const uint64_t allocations = t_allocation_count;
  const auto stop = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(sink);

  const double refs = static_cast<double>(kJsonFiles) * kJsonPasses;
  PlaneCost cost;
  cost.ns_per_reference =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start).count()) /
      refs;
  cost.allocations_per_reference = static_cast<double>(allocations) / refs;
  return cost;
}

// The interned plane as actually shipped: references carry PathIds through
// an instrumented sink chain into the async correlator's ring buffer. The
// measured loop is the producer side only — exactly the cost added to a
// traced syscall; the worker thread's table updates happen concurrently.
// Returns the cost plus the queue high-water mark over the run.
PlaneCost MeasureIdPlane(size_t* high_water, size_t* queue_capacity) {
  // Queue sized above the measured reference count: the producer is never
  // blocked by backpressure, so the measurement is the enqueue cost itself
  // and the high-water mark shows how far the worker actually lagged.
  AsyncCorrelator correlator(SeerParams{}, 0x5ee8,
                             /*queue_capacity=*/size_t{kJsonFiles} * (kJsonPasses + 1));
  SinkChain chain(&correlator);
  chain.Instrument("observer", /*measure_latency=*/false);
  ReferenceSink* sink = chain.head();

  std::vector<PathId> ids;
  ids.reserve(kJsonFiles);
  for (int f = 0; f < kJsonFiles; ++f) {
    ids.push_back(GlobalPaths().Intern(JsonPath(f)));
  }

  // Warm-up pass: file table, relation lists and per-process stream reach
  // steady state, then the queue drains fully.
  for (int f = 0; f < kJsonFiles; ++f) {
    FileReference ref;
    ref.pid = 1;
    ref.kind = RefKind::kPoint;
    ref.path = ids[f];
    ref.time = f + 1;
    sink->OnReference(ref);
  }
  correlator.Drain();

  const auto start = std::chrono::steady_clock::now();
  t_allocation_count = 0;
  g_count_allocations.store(true, std::memory_order_relaxed);
  for (int pass = 0; pass < kJsonPasses; ++pass) {
    for (int f = 0; f < kJsonFiles; ++f) {
      FileReference ref;
      ref.pid = 1;
      ref.kind = RefKind::kPoint;
      ref.path = ids[f];
      ref.time = static_cast<Time>(kJsonFiles) * (pass + 1) + f;
      sink->OnReference(ref);
    }
  }
  g_count_allocations.store(false, std::memory_order_relaxed);
  const uint64_t allocations = t_allocation_count;
  const auto stop = std::chrono::steady_clock::now();
  correlator.Drain();

  *high_water = correlator.high_watermark();
  *queue_capacity = correlator.queue_capacity();

  const double refs = static_cast<double>(kJsonFiles) * kJsonPasses;
  PlaneCost cost;
  cost.ns_per_reference =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start).count()) /
      refs;
  cost.allocations_per_reference = static_cast<double>(allocations) / refs;
  return cost;
}

// Durability cost: what a checkpoint (snapshot encode + atomic write +
// fsync + WAL rotation), a WAL append, and crash replay actually cost, so
// the recovery subsystem's overhead is tracked alongside the data plane's.
struct DurabilityCost {
  double checkpoint_ms = 0.0;
  double snapshot_bytes = 0.0;
  double wal_append_ns_per_record = 0.0;
  double wal_replay_ns_per_record = 0.0;
};

DurabilityCost MeasureDurability() {
  DurabilityCost cost;
  const std::string dir =
      (std::filesystem::temp_directory_path() / "seer_bench_overhead_store").string();
  std::filesystem::remove_all(dir);
  RealFs fs;
  SnapshotStore store(&fs, dir);
  if (!store.Open().ok()) {
    return cost;
  }
  auto correlator = LoadedCorrelator(4096);
  cost.snapshot_bytes = static_cast<double>(correlator->EncodeSnapshot().size());

  // Checkpoint: averaged over a few rounds (each snapshots, rotates the
  // WAL, and prunes — the full periodic-checkpoint path).
  constexpr int kCheckpoints = 5;
  const auto cp_start = std::chrono::steady_clock::now();
  for (int i = 0; i < kCheckpoints; ++i) {
    const auto result = store.Checkpoint(*correlator);
    if (!result.ok()) {
      return cost;
    }
  }
  const auto cp_stop = std::chrono::steady_clock::now();
  cost.checkpoint_ms =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::microseconds>(cp_stop - cp_start).count()) /
      1000.0 / kCheckpoints;

  // WAL append throughput, through the real filesystem (buffered appends +
  // one fsync at the end, as the daemon does between checkpoints).
  constexpr int kWalRecords = 50'000;
  WalWriter writer(&fs, dir + "/bench-wal", 1);
  if (!writer.Create().ok()) {
    return cost;
  }
  std::vector<PathId> ids;
  ids.reserve(kJsonFiles);
  for (int f = 0; f < kJsonFiles; ++f) {
    ids.push_back(GlobalPaths().Intern(JsonPath(f)));
  }
  const auto wal_start = std::chrono::steady_clock::now();
  for (int i = 0; i < kWalRecords; ++i) {
    FileReference ref;
    ref.pid = 1;
    ref.kind = RefKind::kPoint;
    ref.path = ids[i % kJsonFiles];
    ref.time = i + 1;
    (void)writer.AppendReference(ref);
  }
  (void)writer.Sync();
  const auto wal_stop = std::chrono::steady_clock::now();
  cost.wal_append_ns_per_record =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(wal_stop - wal_start).count()) /
      kWalRecords;

  // Replay: the recovery path's cost per logged record.
  const auto bytes = fs.ReadFile(dir + "/bench-wal");
  if (bytes.ok()) {
    Correlator replayed;
    const auto replay_start = std::chrono::steady_clock::now();
    const auto stats = ReplayWal(*bytes, &replayed);
    const auto replay_stop = std::chrono::steady_clock::now();
    if (stats.ok() && stats->records_applied > 0) {
      cost.wal_replay_ns_per_record =
          static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                  replay_stop - replay_start)
                                  .count()) /
          static_cast<double>(stats->records_applied);
    }
  }
  std::filesystem::remove_all(dir);
  return cost;
}

// ---------------------------------------------------------------------------
// Checkpoint plane: what ingest actually stalls for under the async
// checkpoint path (the seal — an owning copy of the state) versus what the
// old synchronous path stalled for (the whole serial encode), plus the
// parallel-encode speedup and the delta-snapshot byte economics after a 1%
// working-set touch. These are the acceptance numbers for the stall-free
// checkpoint plane.
// ---------------------------------------------------------------------------

struct CheckpointPlaneCost {
  int files = 0;
  double seal_us = 0.0;             // ingest stall in the async plane
  double encode_serial_us = 0.0;    // old plane's stall: full sync encode
  double encode_parallel_us = 0.0;  // sharded encode on the pool
  int encode_threads = 0;
  double full_bytes = 0.0;
  double delta_bytes = 0.0;  // delta snapshot after touching 1% of files
  double delta_ratio = 0.0;
  double stall_reduction = 0.0;  // encode_serial / seal
};

CheckpointPlaneCost MeasureCheckpointPlane() {
  constexpr int kFiles = 16384;
  auto correlator = LoadedCorrelator(kFiles);

  const auto us_between = [](std::chrono::steady_clock::time_point a,
                             std::chrono::steady_clock::time_point b) {
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::microseconds>(b - a).count());
  };

  CheckpointPlaneCost cost;
  cost.files = kFiles;

  // Best of a few repetitions for each timed phase: one-shot numbers on a
  // shared CI runner are noisy, and it's the achievable floor the stall
  // comparison is about.
  constexpr int kReps = 3;
  SealedSnapshot seal;
  cost.seal_us = 1e18;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto seal_begin = std::chrono::steady_clock::now();
    SealedSnapshot attempt = correlator->SealSnapshot();
    const auto seal_end = std::chrono::steady_clock::now();
    cost.seal_us = std::min(cost.seal_us, us_between(seal_begin, seal_end));
    seal = std::move(attempt);
  }

  std::string serial;
  cost.encode_serial_us = 1e18;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto serial_begin = std::chrono::steady_clock::now();
    serial = EncodeSealedSnapshot(seal, nullptr);
    const auto serial_end = std::chrono::steady_clock::now();
    cost.encode_serial_us = std::min(cost.encode_serial_us, us_between(serial_begin, serial_end));
  }
  cost.full_bytes = static_cast<double>(serial.size());

  ThreadPool pool;
  cost.encode_threads = pool.threads();
  cost.encode_parallel_us = 1e18;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto parallel_begin = std::chrono::steady_clock::now();
    const std::string parallel = EncodeSealedSnapshot(seal, &pool);
    const auto parallel_end = std::chrono::steady_clock::now();
    cost.encode_parallel_us =
        std::min(cost.encode_parallel_us, us_between(parallel_begin, parallel_end));
  }

  // Touch ~1% of the files (one project neighborhood — the locality a real
  // working set has) and seal a delta against the full snapshot's cut.
  Time t = 1'000'000'000;
  for (int f = 0; f < kFiles / 100; ++f) {
    const int project = f / 16;
    FileReference ref;
    ref.pid = 1 + project;
    ref.kind = RefKind::kPoint;
    ref.path =
        GlobalPaths().Intern("/p" + std::to_string(project) + "/f" + std::to_string(f % 16));
    ref.time = (t += 1000);
    correlator->OnReference(ref);
  }
  Correlator::SealRequest req;
  req.delta = true;
  req.base_generation = 1;
  req.relation_epoch = seal.relation_epoch;
  req.stream_epoch = seal.stream_epoch;
  const SealedSnapshot delta_seal = correlator->SealSnapshot(req);
  const std::string delta = EncodeSealedSnapshot(delta_seal, &pool);
  cost.delta_bytes = static_cast<double>(delta.size());
  cost.delta_ratio = cost.full_bytes > 0 ? cost.delta_bytes / cost.full_bytes : 0.0;
  cost.stall_reduction = cost.seal_us > 0 ? cost.encode_serial_us / cost.seal_us : 0.0;
  return cost;
}

// ---------------------------------------------------------------------------
// Ingest throughput: the full batched pipeline (partition → parallel measure
// → in-order fold) swept across worker counts, plus a microbench of the slab
// neighbor layout against the pre-refactor vector-of-vectors layout.
// ---------------------------------------------------------------------------

constexpr int kIngestStreams = 8;   // distinct pids → shards per segment
constexpr int kIngestPasses = 16;   // ingested refs = kJsonFiles * kIngestPasses

// A pure-reference trace spread round-robin across kIngestStreams process
// streams, so every segment partitions into kIngestStreams shards whose
// distance measurement can proceed in parallel.
std::vector<IngestEvent> BuildIngestTrace() {
  std::vector<PathId> ids;
  ids.reserve(kJsonFiles);
  for (int f = 0; f < kJsonFiles; ++f) {
    ids.push_back(GlobalPaths().Intern(JsonPath(f)));
  }
  std::vector<IngestEvent> events;
  events.reserve(static_cast<size_t>(kJsonFiles) * kIngestPasses);
  Time t = 0;
  for (int pass = 0; pass < kIngestPasses; ++pass) {
    for (int f = 0; f < kJsonFiles; ++f) {
      IngestEvent e;
      e.kind = IngestEvent::Kind::kReference;
      e.ref.pid = 1 + static_cast<Pid>(f % kIngestStreams);
      e.ref.kind = RefKind::kPoint;
      e.ref.path = ids[f];
      e.ref.time = ++t;
      e.time = e.ref.time;
      events.push_back(e);
    }
  }
  return events;
}

struct IngestCost {
  int threads = 0;
  double refs_per_sec = 0.0;
  double allocs_per_ref = 0.0;
  IngestStats stats;
};

IngestCost MeasureIngestThroughput(int threads, const std::vector<IngestEvent>& events) {
  Correlator correlator;
  correlator.SetIngestThreads(threads);
  constexpr size_t kBatch = 1024;
  const auto replay = [&] {
    for (size_t i = 0; i < events.size(); i += kBatch) {
      const size_t n = std::min<size_t>(kBatch, events.size() - i);
      correlator.IngestBatch(events.data() + i, n);
    }
  };
  // Warm-up pass: file table, slab stripes, per-stream windows and shard
  // scratch buffers all reach steady-state capacity before we measure.
  replay();

  g_global_allocation_count.store(0, std::memory_order_relaxed);
  g_count_allocations_global.store(true, std::memory_order_relaxed);
  const auto start = std::chrono::steady_clock::now();
  replay();
  const auto stop = std::chrono::steady_clock::now();
  g_count_allocations_global.store(false, std::memory_order_relaxed);
  const uint64_t allocations =
      g_global_allocation_count.load(std::memory_order_relaxed);

  const double refs = static_cast<double>(events.size());
  const double ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start).count());
  IngestCost cost;
  cost.threads = threads;
  cost.refs_per_sec = ns > 0 ? refs * 1e9 / ns : 0.0;
  cost.allocs_per_ref = static_cast<double>(allocations) / refs;
  cost.stats = correlator.ingest_stats();
  return cost;
}

// The pre-refactor neighbor storage: one heap-allocated std::vector<Neighbor>
// per file, running the SAME paper semantics as the shipped slab — the
// deleted-neighbor scan (whole-FileRecord loads, as the old code did), the
// farthest-mean replacement with a reservoir tie-break, the aging priority,
// means recomputed from the accumulators on every replacement scan, plus
// the reverse index and set-change epoch stamps the real table maintains on
// every membership change. Replays the same observation stream as the slab
// table below, so the two measure identical work on different layouts.
class LegacyNeighborTable {
 public:
  LegacyNeighborTable(const SeerParams& params, const FileTable* files)
      : params_(params), files_(files), rng_(0x1e9ac1) {}

  void Observe(FileId from, FileId to, double distance) {
    if (from == to) {
      return;
    }
    ++update_count_;
    if (lists_.size() <= from) {
      lists_.resize(from + 1);
    }
    auto& list = lists_[from];
    const double floored =
        distance > 0 ? distance : params_.geometric_zero_floor;
    const double log_d = std::log(floored);
    for (auto& n : list) {
      if (n.id == to) {
        n.log_sum += log_d;
        n.linear_sum += distance;
        ++n.observations;
        n.last_update = update_count_;
        return;
      }
    }
    Neighbor cand;
    cand.id = to;
    cand.log_sum = log_d;
    cand.linear_sum = distance;
    cand.observations = 1;
    cand.last_update = update_count_;
    if (list.size() < static_cast<size_t>(params_.max_neighbors)) {
      list.push_back(cand);
      Stamp(from);
      RevAdd(from, to);
      return;
    }
    if (list.empty()) {
      return;
    }
    // Priority 1: a neighbor marked for deletion (FileRecord load per
    // entry — the pointer-chase the packed liveness bytes replaced).
    for (size_t i = 0; i < list.size(); ++i) {
      if (files_->Get(list[i].id).deleted) {
        RevRemove(from, list[i].id);
        list[i] = cand;
        Stamp(from);
        RevAdd(from, to);
        return;
      }
    }
    // Priority 2: farthest mean, reservoir tie-break.
    size_t worst = 0;
    double worst_dist = -1.0;
    size_t ties = 0;
    for (size_t i = 0; i < list.size(); ++i) {
      const double d = list[i].MeanDistance(params_.mean_kind);
      if (d > worst_dist) {
        worst_dist = d;
        worst = i;
        ties = 1;
      } else if (d == worst_dist) {
        ++ties;
        if (rng_() % ties == 0) {
          worst = i;
        }
      }
    }
    if (worst_dist > cand.MeanDistance(params_.mean_kind)) {
      RevRemove(from, list[worst].id);
      list[worst] = cand;
      Stamp(from);
      RevAdd(from, to);
      return;
    }
    // Priority 3: aging.
    size_t oldest = 0;
    uint64_t oldest_update = UINT64_MAX;
    for (size_t i = 0; i < list.size(); ++i) {
      if (list[i].last_update < oldest_update) {
        oldest_update = list[i].last_update;
        oldest = i;
      }
    }
    if (update_count_ - oldest_update > params_.aging_updates) {
      RevRemove(from, list[oldest].id);
      list[oldest] = cand;
      Stamp(from);
      RevAdd(from, to);
    }
  }

 private:
  void Stamp(FileId f) {
    if (set_stamp_.size() <= f) {
      set_stamp_.resize(f + 1, 0);
    }
    set_stamp_[f] = ++epoch_;
  }
  void RevAdd(FileId from, FileId to) {
    if (reverse_.size() <= to) {
      reverse_.resize(to + 1);
    }
    reverse_[to].push_back(from);
  }
  void RevRemove(FileId from, FileId to) {
    if (to >= reverse_.size()) {
      return;
    }
    auto& owners = reverse_[to];
    for (size_t i = 0; i < owners.size(); ++i) {
      if (owners[i] == from) {
        owners[i] = owners.back();
        owners.pop_back();
        return;
      }
    }
  }

  SeerParams params_;
  const FileTable* files_;
  std::mt19937_64 rng_;
  std::vector<std::vector<Neighbor>> lists_;
  std::vector<std::vector<FileId>> reverse_;
  std::vector<uint64_t> set_stamp_;
  uint64_t epoch_ = 0;
  uint64_t update_count_ = 0;
};

struct LayoutCost {
  double legacy_ns_per_obs = 0.0;       // warm: lists at capacity
  uint64_t legacy_build_allocations = 0;  // cold: growing every list from empty
  double slab_ns_per_obs = 0.0;
  uint64_t slab_build_allocations = 0;
};

LayoutCost MeasureNeighborLayouts() {
  // One observation stream for both layouts: folds dominate, but each file
  // accumulates more distinct neighbors than max_neighbors fits, so the
  // replacement scan (the mean-recompute hot spot) runs steadily too.
  struct Obs {
    FileId from;
    FileId to;
    double distance;
  };
  constexpr int kFiles = 512;
  constexpr int kRounds = 48;
  std::vector<Obs> stream;
  stream.reserve(static_cast<size_t>(kFiles) * kRounds * 8);
  for (int r = 0; r < kRounds; ++r) {
    for (int f = 0; f < kFiles; ++f) {
      for (int k = 1; k <= 8; ++k) {
        Obs o;
        o.from = static_cast<FileId>(f);
        // Five stride classes spread each file's candidates over ~27
        // distinct neighbors — past the 20-entry cap, so the warm pass
        // keeps a steady mix of in-place folds and replacement scans
        // rather than degenerating to pure folds.
        o.to = static_cast<FileId>((f + k * (r % 5 + 1)) % kFiles);
        o.distance = static_cast<double>(k * 7 + r % 11);
        stream.push_back(o);
      }
    }
  }

  const SeerParams params;
  LayoutCost cost;
  const double n = static_cast<double>(stream.size());

  // One shared file table: both layouts consult the same liveness source in
  // their deleted-neighbor scans (record loads for the legacy emulation,
  // packed flag bytes for the slab).
  FileTable files;
  for (int f = 0; f < kFiles; ++f) {
    files.Intern(GlobalPaths().Intern("/bench/layout/file" + std::to_string(f)));
  }

  // Both layouts reach zero allocations once at capacity, so allocation cost
  // is counted over the cold build (every neighbor list growing from empty —
  // the cost a growing trace pays continuously as new files appear), while
  // ns/obs is measured warm. The emulation runs the full replacement
  // priority chain, so ns/obs and the allocation counts are both
  // like-for-like comparisons of the two layouts.
  {
    LegacyNeighborTable legacy(params, &files);
    t_allocation_count = 0;
    g_count_allocations.store(true, std::memory_order_relaxed);
    for (const auto& o : stream) {  // cold build: count list-growth allocations
      legacy.Observe(o.from, o.to, o.distance);
    }
    g_count_allocations.store(false, std::memory_order_relaxed);
    cost.legacy_build_allocations = t_allocation_count;
    const auto start = std::chrono::steady_clock::now();
    for (const auto& o : stream) {  // warm: lists at capacity
      legacy.Observe(o.from, o.to, o.distance);
    }
    const auto stop = std::chrono::steady_clock::now();
    cost.legacy_ns_per_obs =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start).count()) /
        n;
  }

  {
    RelationTable slab(params, &files);
    t_allocation_count = 0;
    g_count_allocations.store(true, std::memory_order_relaxed);
    for (const auto& o : stream) {  // cold build: count slab-growth allocations
      slab.Observe(o.from, o.to, o.distance);
    }
    g_count_allocations.store(false, std::memory_order_relaxed);
    cost.slab_build_allocations = t_allocation_count;
    const auto start = std::chrono::steady_clock::now();
    for (const auto& o : stream) {  // warm: slab stripes sized
      slab.Observe(o.from, o.to, o.distance);
    }
    const auto stop = std::chrono::steady_clock::now();
    cost.slab_ns_per_obs =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start).count()) /
        n;
  }

  return cost;
}

void WriteOverheadJson() {
  const PlaneCost before = MeasureStringPlane();
  size_t high_water = 0;
  size_t queue_capacity = 0;
  const PlaneCost after = MeasureIdPlane(&high_water, &queue_capacity);
  const DurabilityCost durability = MeasureDurability();
  const CheckpointPlaneCost plane = MeasureCheckpointPlane();

  const std::vector<IngestEvent> trace = BuildIngestTrace();
  constexpr int kMaxSweepThreads = 8;
  std::vector<IngestCost> ingest;
  for (int threads : {1, 2, 4, kMaxSweepThreads}) {
    ingest.push_back(MeasureIngestThroughput(threads, trace));
  }
  const LayoutCost layout = MeasureNeighborLayouts();
  const unsigned host_cpus = std::thread::hardware_concurrency();
  bench::WarnIfScalingInvalid("overhead", kMaxSweepThreads);

  const char* path = "BENCH_overhead.json";
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "overhead: cannot write %s\n", path);
    return;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"overhead\",\n");
  bench::WriteJsonMachineMeta(out);
  bench::WriteJsonScalingValid(out, kMaxSweepThreads);
  std::fprintf(out, "  \"references\": %d,\n", kJsonFiles * kJsonPasses);
  std::fprintf(out, "  \"string_plane\": {\n");
  std::fprintf(out, "    \"ns_per_reference\": %.2f,\n", before.ns_per_reference);
  std::fprintf(out, "    \"allocations_per_reference\": %.4f\n",
               before.allocations_per_reference);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"id_plane\": {\n");
  std::fprintf(out, "    \"ns_per_reference\": %.2f,\n", after.ns_per_reference);
  std::fprintf(out, "    \"allocations_per_reference\": %.4f\n",
               after.allocations_per_reference);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"queue_high_water_mark\": %zu,\n", high_water);
  std::fprintf(out, "  \"queue_capacity\": %zu,\n", queue_capacity);
  std::fprintf(out, "  \"checkpoint\": {\n");
  std::fprintf(out, "    \"snapshot_ms\": %.3f,\n", durability.checkpoint_ms);
  std::fprintf(out, "    \"snapshot_bytes\": %.0f,\n", durability.snapshot_bytes);
  std::fprintf(out, "    \"wal_append_ns_per_record\": %.2f,\n",
               durability.wal_append_ns_per_record);
  std::fprintf(out, "    \"wal_replay_ns_per_record\": %.2f\n",
               durability.wal_replay_ns_per_record);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"checkpoint_plane\": {\n");
  std::fprintf(out, "    \"files\": %d,\n", plane.files);
  std::fprintf(out, "    \"seal_stall_us\": %.1f,\n", plane.seal_us);
  std::fprintf(out, "    \"encode_serial_us\": %.1f,\n", plane.encode_serial_us);
  std::fprintf(out, "    \"encode_parallel_us\": %.1f,\n", plane.encode_parallel_us);
  std::fprintf(out, "    \"encode_threads\": %d,\n", plane.encode_threads);
  std::fprintf(out, "    \"full_bytes\": %.0f,\n", plane.full_bytes);
  std::fprintf(out, "    \"delta_bytes_1pct_touch\": %.0f,\n", plane.delta_bytes);
  std::fprintf(out, "    \"delta_ratio_1pct_touch\": %.4f,\n", plane.delta_ratio);
  std::fprintf(out, "    \"stall_reduction\": %.1f\n", plane.stall_reduction);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"ingest\": {\n");
  std::fprintf(out, "    \"refs\": %zu,\n", trace.size());
  std::fprintf(out, "    \"streams\": %d,\n", kIngestStreams);
  std::fprintf(out, "    \"host_cpus\": %u,\n", host_cpus);
  std::fprintf(out, "    \"threads\": [\n");
  for (size_t i = 0; i < ingest.size(); ++i) {
    const IngestCost& c = ingest[i];
    std::fprintf(out,
                 "      {\"threads\": %d, \"refs_per_sec\": %.0f, "
                 "\"allocs_per_ref\": %.4f, \"segments\": %llu, "
                 "\"shards\": %llu, \"max_shard_refs\": %llu, "
                 "\"measure_us\": %llu, \"fold_us\": %llu, "
                 "\"parallel_folds\": %llu, \"fold_stripes\": %llu}%s\n",
                 c.threads, c.refs_per_sec, c.allocs_per_ref,
                 static_cast<unsigned long long>(c.stats.segments),
                 static_cast<unsigned long long>(c.stats.shards),
                 static_cast<unsigned long long>(c.stats.max_shard_refs),
                 static_cast<unsigned long long>(c.stats.measure_us),
                 static_cast<unsigned long long>(c.stats.fold_us),
                 static_cast<unsigned long long>(c.stats.parallel_folds),
                 static_cast<unsigned long long>(c.stats.fold_stripes),
                 i + 1 < ingest.size() ? "," : "");
  }
  std::fprintf(out, "    ],\n");
  std::fprintf(out, "    \"neighbor_layout\": {\n");
  std::fprintf(out, "      \"legacy_ns_per_obs\": %.2f,\n", layout.legacy_ns_per_obs);
  std::fprintf(out, "      \"legacy_build_allocations\": %llu,\n",
               static_cast<unsigned long long>(layout.legacy_build_allocations));
  std::fprintf(out, "      \"slab_ns_per_obs\": %.2f,\n", layout.slab_ns_per_obs);
  std::fprintf(out, "      \"slab_build_allocations\": %llu\n",
               static_cast<unsigned long long>(layout.slab_build_allocations));
  std::fprintf(out, "    }\n");
  std::fprintf(out, "  }\n");
  std::fprintf(out, "}\n");
  std::fclose(out);

  std::printf("\nwrote %s:\n", path);
  std::printf("  string plane (emulated): %8.1f ns/ref  %6.3f allocs/ref\n",
              before.ns_per_reference, before.allocations_per_reference);
  std::printf("  id plane     (shipped):  %8.1f ns/ref  %6.3f allocs/ref\n",
              after.ns_per_reference, after.allocations_per_reference);
  std::printf("  queue high-water mark: %zu / %zu\n", high_water, queue_capacity);
  std::printf("  checkpoint: %.2f ms (%.0f byte snapshot)  WAL append %.0f ns/rec  replay %.0f ns/rec\n",
              durability.checkpoint_ms, durability.snapshot_bytes,
              durability.wal_append_ns_per_record, durability.wal_replay_ns_per_record);
  std::printf(
      "  checkpoint plane (%d files): seal stall %.0f us vs serial encode %.0f us "
      "(%.1fx smaller)  parallel encode %.0f us (%d threads)\n",
      plane.files, plane.seal_us, plane.encode_serial_us, plane.stall_reduction,
      plane.encode_parallel_us, plane.encode_threads);
  std::printf("    delta after 1%% touch: %.0f B of %.0f B full (ratio %.3f)\n",
              plane.delta_bytes, plane.full_bytes, plane.delta_ratio);
  std::printf("  ingest (%zu refs, %d streams, host has %u cpu%s):\n", trace.size(),
              kIngestStreams, host_cpus, host_cpus == 1 ? "" : "s");
  for (const IngestCost& c : ingest) {
    std::printf("    threads=%d: %10.0f refs/sec  %6.3f allocs/ref\n", c.threads,
                c.refs_per_sec, c.allocs_per_ref);
  }
  if (host_cpus < 2) {
    std::printf("    (single-cpu host: thread sweep shows overhead, not speedup)\n");
  }
  std::printf("  neighbor layout: legacy %6.1f ns/obs (%llu build allocs)  |  slab %6.1f ns/obs (%llu build allocs)\n",
              layout.legacy_ns_per_obs,
              static_cast<unsigned long long>(layout.legacy_build_allocations),
              layout.slab_ns_per_obs,
              static_cast<unsigned long long>(layout.slab_build_allocations));
}

}  // namespace
}  // namespace seer

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  seer::WriteOverheadJson();
  return 0;
}
