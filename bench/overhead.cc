// Section 5.3 — Implementation cost microbenchmarks.
//
// The paper reports: ~35 us of CPU per traced system call on a 133 MHz
// Pentium (tracing must be much cheaper than the open itself), about two
// minutes of CPU to form clusters (rare, deferrable), and roughly 1 KB of
// memory per tracked file. These google-benchmark microbenchmarks measure
// the same three costs in our implementation; the expectation is the
// *relationship* (tracing nanoseconds-to-microseconds per call, clustering
// seconds-scale at tens of thousands of files, memory ~hundreds of bytes
// to ~1KB per file), not the absolute 1997 numbers.
#include <benchmark/benchmark.h>

#include <memory>

#include "src/core/correlator.h"
#include "src/core/hoard.h"
#include "src/observer/observer.h"
#include "src/process/syscall_tracer.h"
#include "src/workload/environment.h"
#include "src/workload/user_model.h"

namespace seer {
namespace {

// Full per-syscall pipeline cost: tracer -> observer -> correlator.
void BM_TracedOpenClose(benchmark::State& state) {
  SimFilesystem fs;
  fs.MkdirAll("/home/u/proj");
  for (int i = 0; i < 64; ++i) {
    fs.CreateFile("/home/u/proj/f" + std::to_string(i), 1000);
  }
  ProcessTable procs;
  SimClock clock;
  SyscallTracer tracer(&fs, &procs, &clock);
  Observer observer(ObserverConfig{}, &fs);
  Correlator correlator;
  observer.set_sink(&correlator);
  tracer.AddSink(&observer);
  const Pid pid = procs.SpawnInit(1000, "/home/u/proj");
  int i = 0;
  for (auto _ : state) {
    const auto r = tracer.Open(pid, "f" + std::to_string(i++ % 64), false);
    tracer.Close(pid, r.fd);
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_TracedOpenClose);

// Tracer alone (no SEER attached) — the baseline syscall cost.
void BM_UntracedOpenClose(benchmark::State& state) {
  SimFilesystem fs;
  fs.MkdirAll("/home/u");
  fs.CreateFile("/home/u/f", 1000);
  ProcessTable procs;
  SimClock clock;
  SyscallTracer tracer(&fs, &procs, &clock);
  const Pid pid = procs.SpawnInit(1000, "/home/u");
  for (auto _ : state) {
    const auto r = tracer.Open(pid, "f", false);
    tracer.Close(pid, r.fd);
  }
}
BENCHMARK(BM_UntracedOpenClose);

// Builds a correlator loaded with `n_files` interrelated files.
std::unique_ptr<Correlator> LoadedCorrelator(int n_files) {
  auto correlator = std::make_unique<Correlator>();
  // 16-file "projects": realistic cluster granularity.
  Time t = 0;
  for (int pass = 0; pass < 2; ++pass) {
    // Two passes so every pair inside a project has observations; each
    // project runs in its own process stream.
    for (int f = 0; f < n_files; ++f) {
      const int project = f / 16;
      FileReference ref;
      ref.pid = 1 + project;
      ref.kind = RefKind::kPoint;
      ref.path = "/p" + std::to_string(project) + "/f" + std::to_string(f % 16);
      ref.time = (t += 1000);
      correlator->OnReference(ref);
    }
  }
  return correlator;
}

// Clustering cost as a function of file count (the paper: ~2 CPU minutes
// for ~20,000 files on 1997 hardware; ours should be far faster and scale
// linearly — see also bench/clustering_scale).
void BM_BuildClusters(benchmark::State& state) {
  const int n_files = static_cast<int>(state.range(0));
  auto correlator = LoadedCorrelator(n_files);
  for (auto _ : state) {
    benchmark::DoNotOptimize(correlator->BuildClusters());
  }
  state.SetComplexityN(n_files);
}
BENCHMARK(BM_BuildClusters)->Range(1 << 8, 1 << 14)->Complexity(benchmark::oN);

// Hoard selection on top of clustering.
void BM_ChooseHoard(benchmark::State& state) {
  auto correlator = LoadedCorrelator(4096);
  const ClusterSet clusters = correlator->BuildClusters();
  HoardManager manager(64ull << 20);
  const std::set<std::string> always;
  for (auto _ : state) {
    benchmark::DoNotOptimize(manager.ChooseHoard(*correlator, clusters, always,
                                                 [](const std::string&) { return 14'000ull; }));
  }
}
BENCHMARK(BM_ChooseHoard);

// Memory per tracked file (paper: ~1 KB/file, deliberately unoptimised).
void BM_MemoryPerFile(benchmark::State& state) {
  const int n_files = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto correlator = LoadedCorrelator(n_files);
    benchmark::DoNotOptimize(correlator->MemoryBytes());
  }
  auto correlator = LoadedCorrelator(n_files);
  state.counters["bytes_per_file"] =
      static_cast<double>(correlator->MemoryBytes()) / static_cast<double>(n_files);
}
BENCHMARK(BM_MemoryPerFile)->Arg(1 << 12)->Iterations(1);

// End-to-end workload generation rate (events/second of simulator time).
void BM_WorkloadGeneration(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    SimFilesystem fs;
    Rng rng(7);
    const UserEnvironment env = BuildEnvironment(&fs, EnvironmentConfig{}, &rng);
    ProcessTable procs;
    SimClock clock;
    SyscallTracer tracer(&fs, &procs, &clock);
    Observer observer(ObserverConfig{}, &fs);
    Correlator correlator;
    observer.set_sink(&correlator);
    tracer.AddSink(&observer);
    UserModel user(&tracer, &env, UserModelConfig{}, 7);
    state.ResumeTiming();
    user.RunActiveHours(0.2);
    state.counters["events"] = static_cast<double>(tracer.events_emitted());
  }
}
BENCHMARK(BM_WorkloadGeneration)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace seer

BENCHMARK_MAIN();
