// Section 5.3 — Implementation cost microbenchmarks.
//
// The paper reports: ~35 us of CPU per traced system call on a 133 MHz
// Pentium (tracing must be much cheaper than the open itself), about two
// minutes of CPU to form clusters (rare, deferrable), and roughly 1 KB of
// memory per tracked file. These google-benchmark microbenchmarks measure
// the same three costs in our implementation; the expectation is the
// *relationship* (tracing nanoseconds-to-microseconds per call, clustering
// seconds-scale at tens of thousands of files, memory ~hundreds of bytes
// to ~1KB per file), not the absolute 1997 numbers.
//
// In addition to the interactive tables, the binary always writes
// BENCH_overhead.json: ns/reference and allocations/reference for the old
// string-identity data plane (emulated) versus the interned-PathId plane,
// plus the async queue's high-water mark, so future changes have a
// machine-readable perf trajectory to compare against.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <new>
#include <string>
#include <unordered_map>

#include <filesystem>

#include "src/core/async_pipeline.h"
#include "src/core/correlator.h"
#include "src/core/hoard.h"
#include "src/core/snapshot_store.h"
#include "src/core/wal.h"
#include "src/util/fs.h"
#include "src/observer/observer.h"
#include "src/observer/sink_chain.h"
#include "src/process/syscall_tracer.h"
#include "src/workload/environment.h"
#include "src/workload/user_model.h"

// --- allocation counting -----------------------------------------------------
//
// Per-thread counter bumped by the replaced global operator new. Thread-local
// so the producer side of the async pipeline can be measured in isolation:
// the consumer thread's table updates are allowed to allocate, the enqueue
// path is not.
namespace {
std::atomic<bool> g_count_allocations{false};
thread_local uint64_t t_allocation_count = 0;
}  // namespace

void* operator new(std::size_t size) {
  if (g_count_allocations.load(std::memory_order_relaxed)) {
    ++t_allocation_count;
  }
  void* p = std::malloc(size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new[](std::size_t size) {
  if (g_count_allocations.load(std::memory_order_relaxed)) {
    ++t_allocation_count;
  }
  void* p = std::malloc(size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace seer {
namespace {

// Full per-syscall pipeline cost: tracer -> observer -> correlator.
void BM_TracedOpenClose(benchmark::State& state) {
  SimFilesystem fs;
  fs.MkdirAll("/home/u/proj");
  for (int i = 0; i < 64; ++i) {
    fs.CreateFile("/home/u/proj/f" + std::to_string(i), 1000);
  }
  ProcessTable procs;
  SimClock clock;
  SyscallTracer tracer(&fs, &procs, &clock);
  Observer observer(ObserverConfig{}, &fs);
  Correlator correlator;
  observer.set_sink(&correlator);
  tracer.AddSink(&observer);
  const Pid pid = procs.SpawnInit(1000, "/home/u/proj");
  int i = 0;
  for (auto _ : state) {
    const auto r = tracer.Open(pid, "f" + std::to_string(i++ % 64), false);
    tracer.Close(pid, r.fd);
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_TracedOpenClose);

// Tracer alone (no SEER attached) — the baseline syscall cost.
void BM_UntracedOpenClose(benchmark::State& state) {
  SimFilesystem fs;
  fs.MkdirAll("/home/u");
  fs.CreateFile("/home/u/f", 1000);
  ProcessTable procs;
  SimClock clock;
  SyscallTracer tracer(&fs, &procs, &clock);
  const Pid pid = procs.SpawnInit(1000, "/home/u");
  for (auto _ : state) {
    const auto r = tracer.Open(pid, "f", false);
    tracer.Close(pid, r.fd);
  }
}
BENCHMARK(BM_UntracedOpenClose);

// Builds a correlator loaded with `n_files` interrelated files.
std::unique_ptr<Correlator> LoadedCorrelator(int n_files) {
  auto correlator = std::make_unique<Correlator>();
  // 16-file "projects": realistic cluster granularity.
  Time t = 0;
  for (int pass = 0; pass < 2; ++pass) {
    // Two passes so every pair inside a project has observations; each
    // project runs in its own process stream.
    for (int f = 0; f < n_files; ++f) {
      const int project = f / 16;
      FileReference ref;
      ref.pid = 1 + project;
      ref.kind = RefKind::kPoint;
      ref.path =
          GlobalPaths().Intern("/p" + std::to_string(project) + "/f" + std::to_string(f % 16));
      ref.time = (t += 1000);
      correlator->OnReference(ref);
    }
  }
  return correlator;
}

// Clustering cost as a function of file count (the paper: ~2 CPU minutes
// for ~20,000 files on 1997 hardware; ours should be far faster and scale
// linearly — see also bench/clustering_scale).
void BM_BuildClusters(benchmark::State& state) {
  const int n_files = static_cast<int>(state.range(0));
  auto correlator = LoadedCorrelator(n_files);
  for (auto _ : state) {
    benchmark::DoNotOptimize(correlator->BuildClusters());
  }
  state.SetComplexityN(n_files);
}
BENCHMARK(BM_BuildClusters)->Range(1 << 8, 1 << 14)->Complexity(benchmark::oN);

// Hoard selection on top of clustering.
void BM_ChooseHoard(benchmark::State& state) {
  auto correlator = LoadedCorrelator(4096);
  const ClusterSet clusters = correlator->BuildClusters();
  HoardManager manager(64ull << 20);
  const std::set<PathId> always;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        manager.ChooseHoard(*correlator, clusters, always, [](PathId) { return 14'000ull; }));
  }
}
BENCHMARK(BM_ChooseHoard);

// Memory per tracked file (paper: ~1 KB/file, deliberately unoptimised).
void BM_MemoryPerFile(benchmark::State& state) {
  const int n_files = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto correlator = LoadedCorrelator(n_files);
    benchmark::DoNotOptimize(correlator->MemoryBytes());
  }
  auto correlator = LoadedCorrelator(n_files);
  state.counters["bytes_per_file"] =
      static_cast<double>(correlator->MemoryBytes()) / static_cast<double>(n_files);
}
BENCHMARK(BM_MemoryPerFile)->Arg(1 << 12)->Iterations(1);

// End-to-end workload generation rate (events/second of simulator time).
void BM_WorkloadGeneration(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    SimFilesystem fs;
    Rng rng(7);
    const UserEnvironment env = BuildEnvironment(&fs, EnvironmentConfig{}, &rng);
    ProcessTable procs;
    SimClock clock;
    SyscallTracer tracer(&fs, &procs, &clock);
    Observer observer(ObserverConfig{}, &fs);
    Correlator correlator;
    observer.set_sink(&correlator);
    tracer.AddSink(&observer);
    UserModel user(&tracer, &env, UserModelConfig{}, 7);
    state.ResumeTiming();
    user.RunActiveHours(0.2);
    state.counters["events"] = static_cast<double>(tracer.events_emitted());
  }
}
BENCHMARK(BM_WorkloadGeneration)->Unit(benchmark::kMillisecond);

// --- BENCH_overhead.json -----------------------------------------------------

constexpr int kJsonFiles = 1024;       // distinct paths in the working set
constexpr int kJsonPasses = 64;        // measured references = files * passes

// Realistic-length absolute paths: long enough that the string plane's
// per-reference copy cannot hide in the small-string optimisation.
std::string JsonPath(int f) {
  return "/home/user/projects/project" + std::to_string(f / 16) + "/src/module/file" +
         std::to_string(f % 16) + "_" + std::to_string(f) + ".c";
}

struct PlaneCost {
  double ns_per_reference = 0.0;
  double allocations_per_reference = 0.0;
};

// Emulates the pre-refactor data plane: every reference carries its path as
// a std::string across the sink boundary, and the consumer resolves file
// identity with a string-keyed hash map. The measured loop is the producer
// side: build the message (string copy), queue it (mutex + deque of
// string-bearing messages), resolve identity by string hash.
PlaneCost MeasureStringPlane() {
  struct StringMessage {
    Pid pid = 0;
    std::string path;
    Time time = 0;
  };
  std::unordered_map<std::string, uint32_t> identity;
  std::mutex queue_mutex;
  std::deque<StringMessage> queue;
  uint32_t next_id = 0;

  // Warm-up pass: identity map fully populated, as in steady state.
  for (int f = 0; f < kJsonFiles; ++f) {
    identity.emplace(JsonPath(f), next_id++);
  }

  const auto start = std::chrono::steady_clock::now();
  t_allocation_count = 0;
  g_count_allocations.store(true, std::memory_order_relaxed);
  uint64_t sink = 0;
  for (int pass = 0; pass < kJsonPasses; ++pass) {
    for (int f = 0; f < kJsonFiles; ++f) {
      StringMessage m;
      m.pid = 1;
      m.path = JsonPath(f);  // the per-reference string copy of the old plane
      m.time = static_cast<Time>(pass) * kJsonFiles + f;
      sink += identity.find(m.path)->second;
      {
        std::lock_guard<std::mutex> lock(queue_mutex);
        queue.push_back(std::move(m));
        if (queue.size() > 64) {
          queue.pop_front();
        }
      }
    }
  }
  g_count_allocations.store(false, std::memory_order_relaxed);
  const uint64_t allocations = t_allocation_count;
  const auto stop = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(sink);

  const double refs = static_cast<double>(kJsonFiles) * kJsonPasses;
  PlaneCost cost;
  cost.ns_per_reference =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start).count()) /
      refs;
  cost.allocations_per_reference = static_cast<double>(allocations) / refs;
  return cost;
}

// The interned plane as actually shipped: references carry PathIds through
// an instrumented sink chain into the async correlator's ring buffer. The
// measured loop is the producer side only — exactly the cost added to a
// traced syscall; the worker thread's table updates happen concurrently.
// Returns the cost plus the queue high-water mark over the run.
PlaneCost MeasureIdPlane(size_t* high_water, size_t* queue_capacity) {
  // Queue sized above the measured reference count: the producer is never
  // blocked by backpressure, so the measurement is the enqueue cost itself
  // and the high-water mark shows how far the worker actually lagged.
  AsyncCorrelator correlator(SeerParams{}, 0x5ee8,
                             /*queue_capacity=*/size_t{kJsonFiles} * (kJsonPasses + 1));
  SinkChain chain(&correlator);
  chain.Instrument("observer", /*measure_latency=*/false);
  ReferenceSink* sink = chain.head();

  std::vector<PathId> ids;
  ids.reserve(kJsonFiles);
  for (int f = 0; f < kJsonFiles; ++f) {
    ids.push_back(GlobalPaths().Intern(JsonPath(f)));
  }

  // Warm-up pass: file table, relation lists and per-process stream reach
  // steady state, then the queue drains fully.
  for (int f = 0; f < kJsonFiles; ++f) {
    FileReference ref;
    ref.pid = 1;
    ref.kind = RefKind::kPoint;
    ref.path = ids[f];
    ref.time = f + 1;
    sink->OnReference(ref);
  }
  correlator.Drain();

  const auto start = std::chrono::steady_clock::now();
  t_allocation_count = 0;
  g_count_allocations.store(true, std::memory_order_relaxed);
  for (int pass = 0; pass < kJsonPasses; ++pass) {
    for (int f = 0; f < kJsonFiles; ++f) {
      FileReference ref;
      ref.pid = 1;
      ref.kind = RefKind::kPoint;
      ref.path = ids[f];
      ref.time = static_cast<Time>(kJsonFiles) * (pass + 1) + f;
      sink->OnReference(ref);
    }
  }
  g_count_allocations.store(false, std::memory_order_relaxed);
  const uint64_t allocations = t_allocation_count;
  const auto stop = std::chrono::steady_clock::now();
  correlator.Drain();

  *high_water = correlator.high_watermark();
  *queue_capacity = correlator.queue_capacity();

  const double refs = static_cast<double>(kJsonFiles) * kJsonPasses;
  PlaneCost cost;
  cost.ns_per_reference =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start).count()) /
      refs;
  cost.allocations_per_reference = static_cast<double>(allocations) / refs;
  return cost;
}

// Durability cost: what a checkpoint (snapshot encode + atomic write +
// fsync + WAL rotation), a WAL append, and crash replay actually cost, so
// the recovery subsystem's overhead is tracked alongside the data plane's.
struct DurabilityCost {
  double checkpoint_ms = 0.0;
  double snapshot_bytes = 0.0;
  double wal_append_ns_per_record = 0.0;
  double wal_replay_ns_per_record = 0.0;
};

DurabilityCost MeasureDurability() {
  DurabilityCost cost;
  const std::string dir =
      (std::filesystem::temp_directory_path() / "seer_bench_overhead_store").string();
  std::filesystem::remove_all(dir);
  RealFs fs;
  SnapshotStore store(&fs, dir);
  if (!store.Open().ok()) {
    return cost;
  }
  auto correlator = LoadedCorrelator(4096);
  cost.snapshot_bytes = static_cast<double>(correlator->EncodeSnapshot().size());

  // Checkpoint: averaged over a few rounds (each snapshots, rotates the
  // WAL, and prunes — the full periodic-checkpoint path).
  constexpr int kCheckpoints = 5;
  const auto cp_start = std::chrono::steady_clock::now();
  for (int i = 0; i < kCheckpoints; ++i) {
    const auto result = store.Checkpoint(*correlator);
    if (!result.ok()) {
      return cost;
    }
  }
  const auto cp_stop = std::chrono::steady_clock::now();
  cost.checkpoint_ms =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::microseconds>(cp_stop - cp_start).count()) /
      1000.0 / kCheckpoints;

  // WAL append throughput, through the real filesystem (buffered appends +
  // one fsync at the end, as the daemon does between checkpoints).
  constexpr int kWalRecords = 50'000;
  WalWriter writer(&fs, dir + "/bench-wal", 1);
  if (!writer.Create().ok()) {
    return cost;
  }
  std::vector<PathId> ids;
  ids.reserve(kJsonFiles);
  for (int f = 0; f < kJsonFiles; ++f) {
    ids.push_back(GlobalPaths().Intern(JsonPath(f)));
  }
  const auto wal_start = std::chrono::steady_clock::now();
  for (int i = 0; i < kWalRecords; ++i) {
    FileReference ref;
    ref.pid = 1;
    ref.kind = RefKind::kPoint;
    ref.path = ids[i % kJsonFiles];
    ref.time = i + 1;
    (void)writer.AppendReference(ref);
  }
  (void)writer.Sync();
  const auto wal_stop = std::chrono::steady_clock::now();
  cost.wal_append_ns_per_record =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(wal_stop - wal_start).count()) /
      kWalRecords;

  // Replay: the recovery path's cost per logged record.
  const auto bytes = fs.ReadFile(dir + "/bench-wal");
  if (bytes.ok()) {
    Correlator replayed;
    const auto replay_start = std::chrono::steady_clock::now();
    const auto stats = ReplayWal(*bytes, &replayed);
    const auto replay_stop = std::chrono::steady_clock::now();
    if (stats.ok() && stats->records_applied > 0) {
      cost.wal_replay_ns_per_record =
          static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                  replay_stop - replay_start)
                                  .count()) /
          static_cast<double>(stats->records_applied);
    }
  }
  std::filesystem::remove_all(dir);
  return cost;
}

void WriteOverheadJson() {
  const PlaneCost before = MeasureStringPlane();
  size_t high_water = 0;
  size_t queue_capacity = 0;
  const PlaneCost after = MeasureIdPlane(&high_water, &queue_capacity);
  const DurabilityCost durability = MeasureDurability();

  const char* path = "BENCH_overhead.json";
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "overhead: cannot write %s\n", path);
    return;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"overhead\",\n");
  std::fprintf(out, "  \"references\": %d,\n", kJsonFiles * kJsonPasses);
  std::fprintf(out, "  \"string_plane\": {\n");
  std::fprintf(out, "    \"ns_per_reference\": %.2f,\n", before.ns_per_reference);
  std::fprintf(out, "    \"allocations_per_reference\": %.4f\n",
               before.allocations_per_reference);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"id_plane\": {\n");
  std::fprintf(out, "    \"ns_per_reference\": %.2f,\n", after.ns_per_reference);
  std::fprintf(out, "    \"allocations_per_reference\": %.4f\n",
               after.allocations_per_reference);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"queue_high_water_mark\": %zu,\n", high_water);
  std::fprintf(out, "  \"queue_capacity\": %zu,\n", queue_capacity);
  std::fprintf(out, "  \"checkpoint\": {\n");
  std::fprintf(out, "    \"snapshot_ms\": %.3f,\n", durability.checkpoint_ms);
  std::fprintf(out, "    \"snapshot_bytes\": %.0f,\n", durability.snapshot_bytes);
  std::fprintf(out, "    \"wal_append_ns_per_record\": %.2f,\n",
               durability.wal_append_ns_per_record);
  std::fprintf(out, "    \"wal_replay_ns_per_record\": %.2f\n",
               durability.wal_replay_ns_per_record);
  std::fprintf(out, "  }\n");
  std::fprintf(out, "}\n");
  std::fclose(out);

  std::printf("\nwrote %s:\n", path);
  std::printf("  string plane (emulated): %8.1f ns/ref  %6.3f allocs/ref\n",
              before.ns_per_reference, before.allocations_per_reference);
  std::printf("  id plane     (shipped):  %8.1f ns/ref  %6.3f allocs/ref\n",
              after.ns_per_reference, after.allocations_per_reference);
  std::printf("  queue high-water mark: %zu / %zu\n", high_water, queue_capacity);
  std::printf("  checkpoint: %.2f ms (%.0f byte snapshot)  WAL append %.0f ns/rec  replay %.0f ns/rec\n",
              durability.checkpoint_ms, durability.snapshot_bytes,
              durability.wal_append_ns_per_record, durability.wal_replay_ns_per_record);
}

}  // namespace
}  // namespace seer

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  seer::WriteOverheadJson();
  return 0;
}
