// Figure 2 — Mean working sets and miss-free hoard sizes for two managers.
//
// For every machine A-I, and for daily and weekly simulated disconnections,
// prints the mean working set, SEER's miss-free hoard size, and LRU's
// miss-free hoard size (with 99% confidence half-widths), averaged over
// several seeds. Machines B, F and G are additionally run with external
// investigators enabled, mirroring the starred bars in the figure.
//
// Expected shape (paper, Section 5.2.1): SEER consistently needs space only
// slightly greater than the working set, while LRU frequently needs several
// times more; investigators make no statistically significant difference.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/sim/machine_sim.h"
#include "src/util/stats.h"

namespace seer {
namespace {

struct Variant {
  const char* label;
  Time period;
  bool investigators;
};

void RunMachine(const MachineProfile& profile, bool investigators) {
  const Variant variants[] = {
      {"daily", kMicrosPerDay, investigators},
      {"weekly", 7 * kMicrosPerDay, investigators},
  };
  for (const Variant& v : variants) {
    std::vector<double> ws;
    std::vector<double> seer;
    std::vector<double> lru;
    uint64_t events = 0;
    for (int seed = 1; seed <= bench::SeedCount(); ++seed) {
      MissFreeSimConfig config;
      config.period = v.period;
      config.use_investigators = v.investigators;
      config.seed = static_cast<uint64_t>(seed) * 977;
      config.days_override = bench::ScaledDays(profile.days_measured);
      const MissFreeSimResult r = RunMissFreeSimulation(profile, config);
      ws.push_back(r.working_set_mb.mean);
      seer.push_back(r.seer_mb.mean);
      lru.push_back(r.lru_mb.mean);
      events += r.trace_events;
    }
    const Summary sw = Summarize(ws);
    const Summary ss = Summarize(seer);
    const Summary sl = Summarize(lru);
    std::printf("%c%s %-7s  ws %6.1f MB   seer %6.1f (+-%4.1f) MB   lru %6.1f (+-%4.1f) MB"
                "   seer/ws %4.2f   lru/seer %4.2f   [%llu events]\n",
                profile.name, v.investigators ? "*" : " ", v.label, sw.mean, ss.mean,
                ss.ci99_half_width, sl.mean, sl.ci99_half_width,
                sw.mean > 0 ? ss.mean / sw.mean : 0.0, ss.mean > 0 ? sl.mean / ss.mean : 0.0,
                static_cast<unsigned long long>(events));
  }
}

}  // namespace
}  // namespace seer

int main() {
  using namespace seer;
  bench::PrintHeader(
      "Figure 2: mean working sets and miss-free hoard sizes (SEER vs LRU)\n"
      "paper shape: SEER only slightly above the working set; LRU several\n"
      "times larger; '*' rows (external investigators) not significantly\n"
      "different from their unstarred counterparts");

  for (const MachineProfile& profile : AllMachineProfiles()) {
    RunMachine(profile, false);
    if (profile.investigator_variant) {
      RunMachine(profile, true);
    }
    bench::PrintRule();
  }
  return 0;
}
