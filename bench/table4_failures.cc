// Table 4 — Summary of failed disconnections at various severities.
//
// Runs the live-usage simulation for every machine at its configured hoard
// size (Table 4: 50 MB everywhere except G's 98 MB) and prints, per
// machine, the number of disconnections that experienced at least one
// user-reported miss at each severity (0-4), at any severity, and with
// automatic detection.
//
// Expected shape (paper): almost all machines experience zero or near-zero
// failures; only the most heavily used machine (F), whose working set often
// exceeded its deliberately small 50 MB hoard, suffers a significant number
// (13% of its disconnections), dominated by the unobtrusive severities 3
// and 4; there are NO severity-0 failures anywhere.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/sim/live_sim.h"

int main() {
  using namespace seer;
  bench::PrintHeader("Table 4: failed disconnections by severity");

  std::printf("%-5s %6s %6s | %4s %4s %4s %4s %4s | %5s %5s | %s\n", "user", "hoard", "discs",
              "s0", "s1", "s2", "s3", "s4", "any", "auto", "paper row (s0..s4, any, auto)");
  bench::PrintRule();

  const struct {
    char name;
    const char* paper;
  } kPaperRows[] = {
      {'A', "0 0 0 0 0 | 0, 2"},   {'B', "all zero"},
      {'C', "0 0 0 0 0 | 0, 1"},   {'D', "0 0 0 0 0 | 0, 5"},
      {'E', "0 0 0 0 0 | 0, 1"},   {'F', "0 3 6 11 9 | 24, 2"},
      {'G', "0 0 0 0 0 | 0, 3"},   {'H', "all zero"},
      {'I', "0 1 0 0 0 | 1, 5"},
  };

  for (const auto& row : kPaperRows) {
    const MachineProfile profile = GetMachineProfile(row.name);
    LiveSimConfig config;
    config.seed = 1337;
    config.disconnections_override = bench::ScaledDisconnections(profile.disconnections);
    const LiveSimResult r = RunLiveUsage(profile, config);

    const auto by_severity = r.failures_by_severity();
    std::printf("%-5c %4.0fMB %6zu | %4zu %4zu %4zu %4zu %4zu | %5zu %5zu | %s\n", r.machine,
                r.hoard_mb, r.disconnections.size(), by_severity[0], by_severity[1],
                by_severity[2], by_severity[3], by_severity[4], r.failures_any_severity(),
                r.failures_automatic(), row.paper);
  }

  bench::PrintRule();
  std::printf(
      "notes: severity-0 must be zero (critical files are always hoarded);\n"
      "machine F should dominate the failure counts; automatic detections\n"
      "exceed user-reported ones on otherwise clean machines.\n");
  return 0;
}
