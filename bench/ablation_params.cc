// Parameter ablations (Sections 3.1.2, 3.1.3, 4.2, 4.7, 4.9, 6.2).
//
// The paper reports that significant effort went into searching the
// parameter space (Section 4.9) and motivates several design choices
// without numbers. This bench quantifies each on one mid-weight machine:
//
//   * reduction mean   — geometric (chosen) vs arithmetic (rejected, 3.1.2)
//   * distance measure — lifetime (Def. 3) vs sequence (Def. 2) vs
//                        temporal (Def. 1)
//   * reference streams— per-process (chosen) vs merged (rejected, 4.7)
//   * neighbors n      — list length (3.1.3; 20 in the paper)
//   * horizon M        — update window (3.1.3; 100 in the paper)
//   * kn / kf          — clustering thresholds (3.3.2)
//   * dir distance     — weight of the Section 3.3.3 adjustment
//   * frequent filter  — the Section 4.2 threshold, including "off"
//   * Coda baselines   — the three priority schemes the paper dropped
//                        because they trailed LRU without hand-tuning
//
// Output: mean miss-free hoard size (MB); smaller is better; the working
// set is the unreachable lower bound.
#include <cstdio>
#include <functional>

#include "bench/bench_util.h"
#include "src/sim/machine_sim.h"

namespace seer {
namespace {

MachineProfile BenchProfile() {
  MachineProfile p = GetMachineProfile('D');
  p.days_measured = bench::FullScale() ? 118 : 24;
  return p;
}

// Runs one configuration (averaged over seeds) and prints a row.
void Row(const char* label, const std::function<void(MissFreeSimConfig*)>& tweak,
         bool coda = false) {
  const MachineProfile profile = BenchProfile();
  double ws = 0;
  double seer = 0;
  double lru = 0;
  double coda_mb = 0;
  const int seeds = bench::SeedCount();
  for (int s = 1; s <= seeds; ++s) {
    MissFreeSimConfig config;
    config.seed = static_cast<uint64_t>(s) * 3301;
    config.include_coda = coda;
    tweak(&config);
    const MissFreeSimResult r = RunMissFreeSimulation(profile, config);
    ws += r.working_set_mb.mean;
    seer += r.seer_mb.mean;
    lru += r.lru_mb.mean;
    coda_mb += r.coda_mb.mean;
  }
  ws /= seeds;
  seer /= seeds;
  lru /= seeds;
  coda_mb /= seeds;
  if (coda) {
    std::printf("%-34s ws %6.1f  seer %6.1f  lru %6.1f  coda %6.1f MB\n", label, ws, seer, lru,
                coda_mb);
  } else {
    std::printf("%-34s ws %6.1f  seer %6.1f  lru %6.1f MB  (seer/ws %.2f)\n", label, ws, seer,
                lru, ws > 0 ? seer / ws : 0.0);
  }
}

}  // namespace
}  // namespace seer

int main() {
  using namespace seer;
  bench::PrintHeader("Parameter ablations (machine D profile)");

  std::printf("--- reduction mean (Section 3.1.2) ---\n");
  Row("geometric mean (paper)", [](MissFreeSimConfig*) {});
  Row("arithmetic mean (rejected)",
      [](MissFreeSimConfig* c) { c->params.mean_kind = MeanKind::kArithmetic; });

  std::printf("--- distance definition (Section 3.1.1) ---\n");
  Row("lifetime, Def 3 (paper)", [](MissFreeSimConfig*) {});
  Row("sequence, Def 2",
      [](MissFreeSimConfig* c) { c->params.distance_kind = DistanceKind::kSequence; });
  Row("temporal, Def 1",
      [](MissFreeSimConfig* c) { c->params.distance_kind = DistanceKind::kTemporal; });

  std::printf("--- reference streams (Section 4.7) ---\n");
  Row("per-process (paper)", [](MissFreeSimConfig*) {});
  Row("single merged stream",
      [](MissFreeSimConfig* c) { c->params.per_process_streams = false; });

  std::printf("--- neighbor list length n (Section 3.1.3; paper n=20) ---\n");
  for (const int n : {5, 10, 20, 40}) {
    char label[64];
    std::snprintf(label, sizeof(label), "n = %d%s", n, n == 20 ? " (paper)" : "");
    Row(label, [n](MissFreeSimConfig* c) { c->params.max_neighbors = n; });
  }

  std::printf("--- horizon M (Section 3.1.3; paper M=100) ---\n");
  for (const int m : {25, 50, 100, 200}) {
    char label[64];
    std::snprintf(label, sizeof(label), "M = %d%s", m, m == 100 ? " (paper)" : "");
    Row(label, [m](MissFreeSimConfig* c) { c->params.distance_horizon = m; });
  }

  std::printf("--- clustering thresholds kn/kf (Section 3.3.2) ---\n");
  for (const auto& [kn, kf] : std::initializer_list<std::pair<int, int>>{
           {6, 3}, {10, 6}, {14, 8}, {18, 12}}) {
    char label[64];
    std::snprintf(label, sizeof(label), "kn=%d kf=%d%s", kn, kf,
                  kn == 10 ? " (default)" : "");
    Row(label, [kn, kf](MissFreeSimConfig* c) {
      c->params.cluster_near = kn;
      c->params.cluster_far = kf;
    });
  }

  std::printf("--- directory-distance weight (Section 3.3.3) ---\n");
  for (const double w : {0.0, 0.5, 1.0, 2.0}) {
    char label[64];
    std::snprintf(label, sizeof(label), "dir weight = %.1f%s", w, w == 1.0 ? " (default)" : "");
    Row(label, [w](MissFreeSimConfig* c) { c->params.dir_distance_weight = w; });
  }

  std::printf("--- aging horizon (Section 3.1.3) ---\n");
  for (const uint64_t a : {1'000ull, 10'000ull, 50'000ull, 1'000'000'000ull}) {
    char label[64];
    if (a >= 1'000'000'000ull) {
      std::snprintf(label, sizeof(label), "aging off");
    } else {
      std::snprintf(label, sizeof(label), "aging = %lluk updates%s",
                    static_cast<unsigned long long>(a / 1000), a == 50'000 ? " (default)" : "");
    }
    Row(label, [a](MissFreeSimConfig* c) { c->params.aging_updates = a; });
  }

  std::printf("--- meaningless-process detection (Section 4.1) ---\n");
  Row("ratio heuristic, approach 4", [](MissFreeSimConfig*) {});
  Row("control list only, approach 1", [](MissFreeSimConfig* c) {
    c->observer.meaningless_mode = MeaninglessMode::kControlListOnly;
  });
  Row("any-dir-read, approach 2", [](MissFreeSimConfig* c) {
    c->observer.meaningless_mode = MeaninglessMode::kAnyDirectoryRead;
  });
  Row("while-dir-open, approach 3", [](MissFreeSimConfig* c) {
    c->observer.meaningless_mode = MeaninglessMode::kWhileDirectoryOpen;
  });

  std::printf("--- frequent-file threshold (Section 4.2) ---\n");
  for (const double t : {1.0, 0.02, 0.007, 0.003}) {
    char label[64];
    if (t >= 1.0) {
      std::snprintf(label, sizeof(label), "filter off");
    } else {
      std::snprintf(label, sizeof(label), "threshold = %.3f%s", t,
                    t == 0.007 ? " (default)" : "");
    }
    Row(label, [t](MissFreeSimConfig* c) { c->observer.frequent_threshold = t; });
  }

  std::printf("--- Coda-inspired baselines (Section 6.2; untuned profiles) ---\n");
  Row("coda: bounded (CODA's shape)",
      [](MissFreeSimConfig* c) { c->coda_variant = CodaVariant::kBounded; }, /*coda=*/true);
  Row("coda: pure profile",
      [](MissFreeSimConfig* c) { c->coda_variant = CodaVariant::kPureProfile; }, /*coda=*/true);
  Row("coda: hybrid",
      [](MissFreeSimConfig* c) { c->coda_variant = CodaVariant::kHybrid; }, /*coda=*/true);

  bench::PrintRule();
  std::printf(
      "expected: geometric <= arithmetic; lifetime best of the three\n"
      "definitions; per-process streams beat a merged stream; results are\n"
      "fairly flat in n and M around the paper's values; untuned Coda\n"
      "profiles trail LRU (which is why the paper dropped them).\n");
  return 0;
}
