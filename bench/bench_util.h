// Shared helpers for the reproduction benches.
//
// Every bench regenerates one table or figure from the paper. Absolute
// numbers come from our simulated substrate, so they are not expected to
// match the paper's testbed; each bench prints the paper's published values
// alongside ours so the *shape* (who wins, by what factor, where the
// crossovers fall) can be compared directly.
//
// Set SEER_BENCH_FULL=1 to run at the paper's full scale (all measured
// days, more seeds); the default "fast" scale finishes in seconds per
// machine.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "src/util/thread_pool.h"

namespace seer {
namespace bench {

inline bool FullScale() {
  const char* v = std::getenv("SEER_BENCH_FULL");
  return v != nullptr && std::strcmp(v, "0") != 0;
}

// Days to simulate for a machine measured for `paper_days` days.
inline int ScaledDays(int paper_days) {
  if (FullScale()) {
    return paper_days;
  }
  return paper_days < 56 ? paper_days : 56;
}

// Disconnection count for the live-usage benches.
inline int ScaledDisconnections(int paper_count) {
  if (FullScale()) {
    return paper_count;
  }
  return paper_count < 48 ? paper_count : 48;
}

inline int SeedCount() { return FullScale() ? 5 : 2; }

inline void PrintHeader(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("scale: %s (set SEER_BENCH_FULL=1 for the paper's full scale)\n",
              FullScale() ? "FULL" : "fast");
  std::printf("================================================================\n");
}

inline void PrintRule() {
  std::printf("----------------------------------------------------------------\n");
}

// Physical CPUs of the machine running the bench (never 0; a JSON consumer
// comparing runs needs the real denominator).
inline int HostCpus() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

// The thread count the engine will actually use: a validated SEER_THREADS
// override, else hardware concurrency. An invalid SEER_THREADS aborts the
// bench — silently benchmarking at the wrong width poisons every number
// downstream.
inline int EffectiveSeerThreads() {
  const StatusOr<int> env = SeerThreadsFromEnv();
  if (!env.ok()) {
    std::fprintf(stderr, "bench: %s\n", env.status().message().c_str());
    std::exit(2);
  }
  return *env > 0 ? *env : DefaultThreadCount();
}

// Machine metadata common to every BENCH_*.json, so results from different
// hosts/configs are never conflated. Call right after the opening brace.
inline void WriteJsonMachineMeta(std::FILE* out) {
  std::fprintf(out, "  \"host_cpus\": %d,\n", HostCpus());
  std::fprintf(out, "  \"seer_threads\": %d,\n", EffectiveSeerThreads());
}

// A thread sweep only demonstrates *scaling* when the host actually has the
// cores being swept; on a narrower machine the same numbers measure
// oversubscription overhead instead. Benches that sweep thread counts must
// record which regime they ran in so downstream consumers (tools/
// bench_compare.py, CI perf gates) never misread a 1-cpu run as a
// parallelism regression.
inline bool ScalingValid(int max_threads_swept) {
  return HostCpus() >= max_threads_swept;
}

// Emits the "scaling_valid" JSON flag. Call alongside WriteJsonMachineMeta
// in any bench whose JSON carries a thread sweep.
inline void WriteJsonScalingValid(std::FILE* out, int max_threads_swept) {
  std::fprintf(out, "  \"scaling_valid\": %s,\n",
               ScalingValid(max_threads_swept) ? "true" : "false");
}

// Loud stderr warning for humans reading the console output of an invalid
// sweep. Returns the validity so callers can branch on it.
inline bool WarnIfScalingInvalid(const char* bench_name, int max_threads_swept) {
  if (ScalingValid(max_threads_swept)) {
    return true;
  }
  std::fprintf(stderr,
               "\n*** %s: host has %d cpu%s but the sweep goes to %d threads.\n"
               "*** Multi-thread numbers measure OVERSUBSCRIPTION OVERHEAD, not\n"
               "*** speedup; \"scaling_valid\": false is recorded in the JSON and\n"
               "*** scaling gates must be skipped on this host.\n\n",
               bench_name, HostCpus(), HostCpus() == 1 ? "" : "s", max_threads_swept);
  return false;
}

}  // namespace bench
}  // namespace seer

#endif  // BENCH_BENCH_UTIL_H_
