// Shared helpers for the reproduction benches.
//
// Every bench regenerates one table or figure from the paper. Absolute
// numbers come from our simulated substrate, so they are not expected to
// match the paper's testbed; each bench prints the paper's published values
// alongside ours so the *shape* (who wins, by what factor, where the
// crossovers fall) can be compared directly.
//
// Set SEER_BENCH_FULL=1 to run at the paper's full scale (all measured
// days, more seeds); the default "fast" scale finishes in seconds per
// machine.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace seer {
namespace bench {

inline bool FullScale() {
  const char* v = std::getenv("SEER_BENCH_FULL");
  return v != nullptr && std::strcmp(v, "0") != 0;
}

// Days to simulate for a machine measured for `paper_days` days.
inline int ScaledDays(int paper_days) {
  if (FullScale()) {
    return paper_days;
  }
  return paper_days < 56 ? paper_days : 56;
}

// Disconnection count for the live-usage benches.
inline int ScaledDisconnections(int paper_count) {
  if (FullScale()) {
    return paper_count;
  }
  return paper_count < 48 ? paper_count : 48;
}

inline int SeedCount() { return FullScale() ? 5 : 2; }

inline void PrintHeader(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("scale: %s (set SEER_BENCH_FULL=1 for the paper's full scale)\n",
              FullScale() ? "FULL" : "fast");
  std::printf("================================================================\n");
}

inline void PrintRule() {
  std::printf("----------------------------------------------------------------\n");
}

}  // namespace bench
}  // namespace seer

#endif  // BENCH_BENCH_UTIL_H_
