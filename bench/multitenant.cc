// Multi-tenant server plane at fleet scale.
//
// Drives the TenantRouter with a synthetic fleet of tenants streaming
// interleaved references over ONE shared pool, with the staggered
// checkpoint scheduler and the memory-budget eviction pass running on a
// periodic Tick — the production shape of the hoard service. Reports the
// aggregate numbers that matter for capacity planning: fleet ingest rate,
// checkpoint seal stalls (the only ingest-visible cost of a background
// checkpoint), per-tenant memory, and evict/restore traffic.
//
// The backing store is MemFs: the subject here is the server plane, not
// the disk, and a thousand tenants' genesis checkpoints would otherwise
// turn the run into an fsync benchmark.
//
// Scale knobs:
//   SEER_MT_TENANTS  fleet size        (default 1000; CI smoke uses 64)
//   SEER_MT_REFS     references/tenant (default 400)
//   SEER_MT_SOCKET   1 = stream over a real UDS through HoardService
//                    (wire framing + per-tenant Observer pipeline included)
//   SEER_BENCH_FULL  10k tenants, more refs
//
// Output: BENCH_multitenant.json
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/correlator.h"
#include "src/server/client.h"
#include "src/server/service.h"
#include "src/server/tenant_router.h"
#include "src/util/fs.h"

namespace seer {
namespace {

size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') {
    return fallback;
  }
  const long long n = std::atoll(v);
  return n > 0 ? static_cast<size_t>(n) : fallback;
}

// Current VmRSS in bytes, 0 when /proc is unavailable.
uint64_t ReadVmRssBytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) {
    return 0;
  }
  char line[256];
  uint64_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmRSS: %" SCNu64 " kB", &kb) == 1) {
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
}

// Per-tenant reference stream: a small working set plus a long tail, times
// advancing per event. Tenants share the path universe (shared interner —
// the worst case for isolation) but walk it in tenant-specific orders.
std::vector<FileReference> TenantStream(uint32_t seed, size_t refs) {
  std::mt19937 rng(seed);
  std::vector<FileReference> out;
  out.reserve(refs);
  Time time = 0;
  for (size_t i = 0; i < refs; ++i) {
    time += kMicrosPerSecond / 8;
    FileReference r;
    r.pid = 1 + static_cast<Pid>(rng() % 3);
    r.kind = RefKind::kPoint;
    const uint32_t roll = rng() % 100;
    const uint32_t file = roll < 75 ? rng() % 32 : rng() % 512;
    r.path = GlobalPaths().Intern("/fleet/f" + std::to_string(file));
    r.time = time;
    out.push_back(r);
  }
  return out;
}

// The same stream slice as TenantStream, rendered as syscall events for
// the socket transport: each reference becomes an open/close pair, which
// the server-side Observer collapses back into a point reference.
std::vector<TraceEvent> TenantStreamEvents(uint32_t seed, size_t base, size_t n) {
  const std::vector<FileReference> refs = TenantStream(seed, base + n);
  std::vector<TraceEvent> events;
  events.reserve(2 * n);
  Fd fd = 1000;
  for (size_t i = base; i < base + n; ++i) {
    const FileReference& r = refs[i];
    TraceEvent open;
    open.seq = 2 * i;
    open.time = r.time;
    open.pid = r.pid;
    open.op = Op::kOpen;
    open.path = std::string(GlobalPaths().PathOf(r.path));
    open.fd = fd;
    TraceEvent close;
    close.seq = 2 * i + 1;
    close.time = r.time;
    close.pid = r.pid;
    close.op = Op::kClose;
    close.fd = fd;
    ++fd;
    events.push_back(std::move(open));
    events.push_back(close);
  }
  return events;
}

uint64_t Percentile(std::vector<uint64_t> v, double p) {
  if (v.empty()) {
    return 0;
  }
  std::sort(v.begin(), v.end());
  const size_t idx = std::min(v.size() - 1, static_cast<size_t>(p * (v.size() - 1) + 0.5));
  return v[idx];
}

}  // namespace
}  // namespace seer

int main() {
  using namespace seer;
  bench::PrintHeader(
      "Multi-tenant hoard service: one shared pool, staggered checkpoints,\n"
      "budgeted residency — fleet ingest rate and per-tenant footprint");

  const size_t tenants =
      EnvSize("SEER_MT_TENANTS", bench::FullScale() ? 10'000 : 1'000);
  const size_t refs_per_tenant = EnvSize("SEER_MT_REFS", bench::FullScale() ? 1'000 : 400);
  const int threads = bench::EffectiveSeerThreads();
  const bool socket_mode = EnvSize("SEER_MT_SOCKET", 0) != 0;
  std::printf("tenants: %zu, refs/tenant: %zu, threads: %d, transport: %s\n\n", tenants,
              refs_per_tenant, threads, socket_mode ? "unix socket" : "in-process");

  MemFs fs;
  TenantRouterConfig config;
  config.threads = threads;
  config.checkpoint_interval = 20 * kMicrosPerSecond;  // sim-time: many cycles
  config.max_checkpoints_inflight = 2;
  // Keep at most ~1/4 of the fleet resident so the evict/restore path runs
  // at scale (capacity servers oversubscribe memory exactly like this).
  config.max_resident_tenants = std::max<size_t>(8, tenants / 4);

  // Socket mode wraps the router in HoardService; in-process mode drives
  // it directly. Either way `router` below is the plane under test.
  std::unique_ptr<TenantRouter> inproc;
  std::unique_ptr<HoardService> service;
  if (socket_mode) {
    HoardServiceConfig service_config;
    service_config.router = config;
    service = std::make_unique<HoardService>(&fs, "/srv", service_config);
  } else {
    inproc = std::make_unique<TenantRouter>(&fs, "/srv", config);
  }

  const uint64_t rss_before = ReadVmRssBytes();
  const auto start = std::chrono::steady_clock::now();

  // Interleave the fleet round-robin in chunks, ticking the control plane
  // between rounds. Chunked delivery is what a transport would do; the
  // chunk size keeps the schedule tenant-interleaved rather than serial.
  // Each tenant's sink batches internally (IngestBatcher -> IngestBatch),
  // so sustained streams flow through the stripe-sharded parallel fold on
  // the router's shared pool.
  constexpr size_t kChunk = 100;
  const auto run_fleet = [&](TenantRouter* r) -> uint64_t {
    uint64_t delivered = 0;
    Time now = 0;
    for (size_t base = 0; base < refs_per_tenant; base += kChunk) {
      const size_t n = std::min(kChunk, refs_per_tenant - base);
      for (size_t t = 0; t < tenants; ++t) {
        // Regenerate the stream slice from the seed: holding tenants × refs
        // FileReferences resident would dominate the bench's own RSS.
        const std::vector<FileReference> stream =
            TenantStream(0x5eed + static_cast<uint32_t>(t), base + n);
        ReferenceSink* sink = r->SinkFor(static_cast<TenantId>(t + 1));
        for (size_t i = base; i < base + n; ++i) {
          sink->OnReference(stream[i]);
        }
        delivered += n;
      }
      now += 5 * kMicrosPerSecond;
      (void)r->Tick(now);
    }
    (void)r->DrainCheckpoints();
    return delivered;
  };
  uint64_t total_refs = 0;
  uint64_t resident_at_peak = 0;
  if (socket_mode) {
    const std::string socket_path =
        "/tmp/seer-mt-" + std::to_string(::getpid()) + ".sock";
    const Status listening = service->Listen("unix:" + socket_path);
    if (!listening.ok()) {
      std::fprintf(stderr, "listen: %s\n", listening.message().c_str());
      return 1;
    }
    Status serve_status;
    std::thread server([&] { serve_status = service->Serve(); });
    auto client = SeerClient::Connect("unix:" + socket_path);
    if (!client.ok()) {
      std::fprintf(stderr, "connect: %s\n", client.status().message().c_str());
      service->RequestStop();
      server.join();
      return 1;
    }
    for (size_t base = 0; base < refs_per_tenant; base += kChunk) {
      const size_t n = std::min(kChunk, refs_per_tenant - base);
      for (size_t t = 0; t < tenants; ++t) {
        const std::vector<TraceEvent> events =
            TenantStreamEvents(0x5eed + static_cast<uint32_t>(t), base, n);
        const Status streamed =
            client->StreamEvents(static_cast<TenantId>(t + 1), events);
        if (!streamed.ok()) {
          std::fprintf(stderr, "stream: %s\n", streamed.message().c_str());
          return 1;
        }
        total_refs += n;
      }
    }
    // Delivery barrier: frames are processed in connection order, so the
    // ping ack means every streamed event has been ingested.
    if (const Status ping = client->Ping(); !ping.ok()) {
      std::fprintf(stderr, "ping: %s\n", ping.message().c_str());
      return 1;
    }
    const auto fleet_stats = client->Stats();
    if (fleet_stats.ok()) {
      for (const TenantStats& s : *fleet_stats) {
        resident_at_peak += s.resident ? 1 : 0;
      }
    }
    if (const Status stop = client->Shutdown(); !stop.ok()) {
      std::fprintf(stderr, "shutdown: %s\n", stop.message().c_str());
      return 1;
    }
    server.join();
    if (!serve_status.ok()) {
      std::fprintf(stderr, "serve: %s\n", serve_status.message().c_str());
      return 1;
    }
  } else {
    total_refs = run_fleet(inproc.get());
  }

  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  const uint64_t rss_after = ReadVmRssBytes();

  TenantRouter& router = socket_mode ? service->router() : *inproc;
  if (!router.last_error().ok()) {
    std::fprintf(stderr, "router error: %s\n", router.last_error().message().c_str());
    return 1;
  }

  const std::vector<uint64_t>& stalls = router.seal_stall_micros();
  const uint64_t p50 = Percentile(stalls, 0.50);
  const uint64_t p99 = Percentile(stalls, 0.99);
  const double refs_per_sec = total_refs / elapsed;
  // Socket mode drains on shutdown (0 resident after Serve returns), so
  // residency is sampled over the wire just before the shutdown verb.
  const uint64_t resident = socket_mode ? resident_at_peak : router.resident_tenants();
  const uint64_t mem_per_resident =
      router.resident_tenants() > 0 ? router.resident_bytes() / router.resident_tenants()
                                    : 0;
  const uint64_t rss_delta = rss_after > rss_before ? rss_after - rss_before : 0;

  std::printf("fleet ingest:      %.0f refs/s (%" PRIu64 " refs, %.2f s)\n",
              refs_per_sec, total_refs, elapsed);
  std::printf("checkpoints:       %" PRIu64 " harvested, seal stall p50 %" PRIu64
              " us, p99 %" PRIu64 " us\n",
              router.checkpoints_harvested(), p50, p99);
  std::printf("residency:         %" PRIu64 "/%zu tenants, %" PRIu64
              " bytes/resident tenant\n",
              resident, tenants, mem_per_resident);
  std::printf("evict/restore:     %" PRIu64 " evictions, %" PRIu64 " restores\n",
              router.evictions(), router.restores());
  if (socket_mode) {
    std::printf("wire:              %" PRIu64 " frames, %" PRIu64
                " events ingested, %" PRIu64 " protocol errors\n",
                service->frames_received(), service->events_ingested(),
                service->protocol_errors());
  }
  std::printf("process RSS delta: %" PRIu64 " bytes (%.1f KB/tenant)\n", rss_delta,
              tenants > 0 ? rss_delta / 1024.0 / tenants : 0.0);
  std::printf("store footprint:   %" PRIu64 " bytes in MemFs\n", fs.TotalBytes());

  // Thread sweep (in-process only): the whole fleet replayed on fresh
  // routers at pool widths 1/2/4/8. Each tenant's batched ingest rides the
  // stripe-sharded fold, so aggregate refs/s should rise with the pool on
  // a wide-enough host; scaling_valid records whether this host qualifies.
  struct SweepPoint {
    int threads = 0;
    double refs_per_sec = 0.0;
  };
  constexpr int kMaxSweepThreads = 8;
  std::vector<SweepPoint> sweep;
  if (!socket_mode) {
    bench::WarnIfScalingInvalid("multitenant", kMaxSweepThreads);
    std::printf("\nfleet thread sweep (fresh router per width):\n");
    for (const int tc : {1, 2, 4, kMaxSweepThreads}) {
      MemFs sweep_fs;
      TenantRouterConfig sweep_config = config;
      sweep_config.threads = tc;
      TenantRouter sweep_router(&sweep_fs, "/srv", sweep_config);
      const auto sweep_start = std::chrono::steady_clock::now();
      const uint64_t delivered = run_fleet(&sweep_router);
      const double sweep_elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - sweep_start)
              .count();
      SweepPoint point;
      point.threads = tc;
      point.refs_per_sec = sweep_elapsed > 0 ? delivered / sweep_elapsed : 0.0;
      sweep.push_back(point);
      std::printf("  threads=%d: %12.0f refs/s\n", tc, point.refs_per_sec);
    }
  }

  const char* path = "BENCH_multitenant.json";
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "multitenant: cannot write %s\n", path);
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"multitenant\",\n");
  bench::WriteJsonMachineMeta(out);
  bench::WriteJsonScalingValid(out, kMaxSweepThreads);
  std::fprintf(out, "  \"transport\": \"%s\",\n", socket_mode ? "socket" : "inproc");
  if (socket_mode) {
    std::fprintf(out, "  \"frames_received\": %" PRIu64 ",\n", service->frames_received());
    std::fprintf(out, "  \"events_ingested\": %" PRIu64 ",\n", service->events_ingested());
  }
  std::fprintf(out, "  \"tenants\": %zu,\n", tenants);
  std::fprintf(out, "  \"refs_per_tenant\": %zu,\n", refs_per_tenant);
  std::fprintf(out, "  \"total_refs\": %" PRIu64 ",\n", total_refs);
  std::fprintf(out, "  \"elapsed_sec\": %.3f,\n", elapsed);
  std::fprintf(out, "  \"aggregate_refs_per_sec\": %.0f,\n", refs_per_sec);
  std::fprintf(out, "  \"checkpoints_harvested\": %" PRIu64 ",\n",
               router.checkpoints_harvested());
  std::fprintf(out, "  \"seal_stall_p50_us\": %" PRIu64 ",\n", p50);
  std::fprintf(out, "  \"seal_stall_p99_us\": %" PRIu64 ",\n", p99);
  std::fprintf(out, "  \"resident_tenants\": %" PRIu64 ",\n", resident);
  std::fprintf(out, "  \"memory_bytes_per_resident_tenant\": %" PRIu64 ",\n",
               mem_per_resident);
  std::fprintf(out, "  \"rss_delta_bytes\": %" PRIu64 ",\n", rss_delta);
  std::fprintf(out, "  \"rss_kb_per_tenant\": %.1f,\n",
               tenants > 0 ? rss_delta / 1024.0 / tenants : 0.0);
  std::fprintf(out, "  \"store_bytes\": %" PRIu64 ",\n", fs.TotalBytes());
  std::fprintf(out, "  \"thread_sweep\": [\n");
  for (size_t i = 0; i < sweep.size(); ++i) {
    std::fprintf(out, "    {\"threads\": %d, \"aggregate_refs_per_sec\": %.0f}%s\n",
                 sweep[i].threads, sweep[i].refs_per_sec,
                 i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"evictions\": %" PRIu64 ",\n", router.evictions());
  std::fprintf(out, "  \"restores\": %" PRIu64 "\n", router.restores());
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", path);
  return 0;
}
