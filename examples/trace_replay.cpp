// Recording and replaying reference traces.
//
// SEER's evaluation is trace-driven (Section 5.1.2): traces collected on
// live machines are replayed into the correlator in simulation mode. This
// example records a synthetic session to a trace file, then replays the
// file through a fresh observer/correlator stack and verifies both stacks
// learned the same relationships.
//
//   $ ./trace_replay [trace-file]
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/core/correlator.h"
#include "src/observer/observer.h"
#include "src/process/syscall_tracer.h"
#include "src/trace/trace_io.h"
#include "src/workload/environment.h"
#include "src/workload/user_model.h"

using namespace seer;

namespace {

// A TraceSink that appends every event to a TraceWriter.
class FileRecorder : public TraceSink {
 public:
  explicit FileRecorder(std::ostream& out) : writer_(out) {}
  void OnEvent(const TraceEvent& event) override { writer_.Write(event); }
  size_t count() const { return writer_.events_written(); }

 private:
  TraceWriter writer_;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string trace_path = argc > 1 ? argv[1] : "/tmp/seer_example.trace";

  // --- record ---------------------------------------------------------------
  SimFilesystem fs;
  Rng rng(31);
  const UserEnvironment env = BuildEnvironment(&fs, EnvironmentConfig{}, &rng);
  ProcessTable processes;
  SimClock clock;
  SyscallTracer tracer(&fs, &processes, &clock);

  ObserverConfig observer_config;
  observer_config.frequent_threshold = 0.02;  // short demo: see project_clustering.cpp
  Observer live_observer(observer_config, &fs);
  Correlator live_correlator;
  live_observer.set_sink(&live_correlator);
  tracer.AddSink(&live_observer);

  std::ofstream out(trace_path);
  FileRecorder recorder(out);
  tracer.AddSink(&recorder);

  UserModel user(&tracer, &env, UserModelConfig{}, 31);
  user.SeedHistory();
  user.RunActiveHours(1.0);
  out.close();
  std::printf("recorded %zu events to %s\n", recorder.count(), trace_path.c_str());

  // --- replay ---------------------------------------------------------------
  std::ifstream in(trace_path);
  Observer replay_observer(observer_config, &fs);
  Correlator replay_correlator;
  replay_observer.set_sink(&replay_correlator);

  TraceReader reader(in);
  size_t replayed = 0;
  for (;;) {
    auto event = reader.Next();
    if (!event.ok()) {
      continue;  // malformed line: counted by the reader, keep going
    }
    if (!event->has_value()) {
      break;
    }
    replay_observer.OnEvent(**event);
    ++replayed;
  }
  std::printf("replayed %zu events (%zu malformed lines)\n", replayed,
              reader.malformed_lines());

  // --- compare ----------------------------------------------------------------
  std::printf("\nlive stack:   %zu files, %zu clusters\n", live_correlator.files().size(),
              live_correlator.BuildClusters().clusters.size());
  std::printf("replay stack: %zu files, %zu clusters\n", replay_correlator.files().size(),
              replay_correlator.BuildClusters().clusters.size());

  // Pick a project file that actually has tracked neighbors.
  std::string probe = env.projects[0].sources[0];
  for (const auto& candidate : env.projects[0].sources) {
    if (!live_correlator.NeighborPaths(candidate).empty()) {
      probe = candidate;
      break;
    }
  }
  const auto neighbors = live_correlator.NeighborPaths(probe);
  const std::string other = neighbors.empty() ? env.projects[0].headers[0] : neighbors.front();
  std::printf("\ndistance %s -> %s\n  live: %.3f   replay: %.3f\n", probe.c_str(),
              other.c_str(), live_correlator.Distance(probe, other),
              replay_correlator.Distance(probe, other));
  std::printf("\n(the two stacks should agree exactly: the trace captures everything\n"
              "the observer needs)\n");
  return 0;
}
