// Exploring semantic distance and project clustering.
//
// Generates a developer workload over a realistic home directory, then
// dissects what the correlator learned: the nearest neighbors of a source
// file, the project clusters (with and without the external investigators
// of Section 3.2), and how the frequently-referenced-file filter absorbed
// the shared libraries.
//
//   $ ./project_clustering
#include <cstdio>
#include <memory>

#include "src/core/correlator.h"
#include "src/core/investigator.h"
#include "src/observer/observer.h"
#include "src/process/syscall_tracer.h"
#include "src/workload/environment.h"
#include "src/workload/user_model.h"

using namespace seer;

namespace {

void PrintClusterSummary(const Correlator& correlator, const char* label) {
  const ClusterSet clusters = correlator.BuildClusters();
  size_t multi = 0;
  size_t largest = 0;
  for (const Cluster& c : clusters.clusters) {
    if (c.members.size() > 1) {
      ++multi;
    }
    largest = std::max(largest, c.members.size());
  }
  std::printf("%s: %zu clusters (%zu multi-file, largest %zu members)\n", label,
              clusters.clusters.size(), multi, largest);
}

}  // namespace

int main() {
  SimFilesystem fs;
  Rng rng(7);
  EnvironmentConfig env_config;
  env_config.num_projects = 4;
  const UserEnvironment env = BuildEnvironment(&fs, env_config, &rng);

  ProcessTable processes;
  SimClock clock;
  SyscallTracer tracer(&fs, &processes, &clock);
  // A short, dev-heavy demo compresses relative access frequencies, so use
  // a higher frequent-file threshold than the simulation default; only the
  // shared libraries and the busiest tools should cross it here.
  ObserverConfig observer_config;
  observer_config.frequent_threshold = 0.02;
  Observer observer(observer_config, &fs);
  observer.PretrainProgramHistory(env.find, 10'000, 9'000);
  Correlator correlator;
  observer.set_sink(&correlator);
  tracer.AddSink(&observer);

  UserModelConfig user_config;
  user_config.dev_weight = 0.8;
  user_config.doc_weight = 0.1;
  user_config.mail_weight = 0.1;
  UserModel user(&tracer, &env, user_config, 7);
  user.SeedHistory();
  user.RunActiveHours(2.0);

  // --- nearest neighbors of a source file ---------------------------------
  const std::string& probe = env.projects[0].sources[0];
  std::printf("nearest neighbors of %s:\n", probe.c_str());
  for (const auto& neighbor : correlator.NeighborPaths(probe)) {
    std::printf("  %-40s distance %.2f\n", neighbor.c_str(),
                correlator.Distance(probe, neighbor));
  }

  // --- the shared-library filter -------------------------------------------
  std::printf("\nfrequently-referenced files (excluded from distances, always hoarded):\n");
  for (const PathId path : observer.frequent_files()) {
    std::printf("  %s\n", PathString(path).c_str());
  }

  // --- clustering, with and without investigators --------------------------
  std::printf("\n");
  PrintClusterSummary(correlator, "clusters without investigators");

  correlator.AddInvestigator(std::make_unique<IncludeScanner>());
  correlator.AddInvestigator(std::make_unique<MakefileInvestigator>());
  correlator.RunInvestigators(fs);
  PrintClusterSummary(correlator, "clusters with #include + Makefile investigators");

  // --- does project 0 cluster as one unit? ---------------------------------
  const ClusterSet clusters = correlator.BuildClusters();
  const FileId main_id = correlator.files().FindPath(env.projects[0].sources[0]);
  if (main_id != kInvalidFileId) {
    std::printf("\nproject 0's primary source belongs to %zu cluster(s); first contains:\n",
                clusters.ClustersOf(main_id).size());
    if (!clusters.ClustersOf(main_id).empty()) {
      const Cluster& c = clusters.clusters[clusters.ClustersOf(main_id)[0]];
      size_t in_project = 0;
      for (const FileId id : c.members) {
        if (correlator.files().PathOf(id).find(env.projects[0].dir) == 0) {
          ++in_project;
        }
      }
      std::printf("  %zu members, %zu of them inside %s\n", c.members.size(), in_project,
                  env.projects[0].dir.c_str());
    }
  }
  return 0;
}
