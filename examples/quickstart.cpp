// Quickstart: the smallest useful SEER pipeline.
//
// Builds a tiny simulated filesystem, traces a user compiling two little
// projects, lets the correlator compute semantic distances, clusters the
// files into projects, and asks the hoard manager what to take on the road
// given a 100 KB budget.
//
//   $ ./quickstart
#include <cstdio>

#include "src/core/correlator.h"
#include "src/core/hoard.h"
#include "src/observer/observer.h"
#include "src/process/syscall_tracer.h"
#include "src/vfs/sim_filesystem.h"

using namespace seer;

namespace {

// One compilation: the source stays open while its headers cycle — the
// reference pattern SEER's lifetime semantic distance is built around.
void Compile(SyscallTracer& tracer, Pid shell, const std::string& dir) {
  const Pid cc = tracer.Fork(shell).pid;
  tracer.Exec(cc, "/bin/cc");
  const auto src = tracer.Open(cc, dir + "/main.c", false);
  for (const char* header : {"/a.h", "/b.h"}) {
    const auto h = tracer.Open(cc, dir + header, false);
    tracer.Close(cc, h.fd);
  }
  const auto obj = tracer.Create(cc, dir + "/main.o", 2'000);
  tracer.Close(cc, obj.fd);
  tracer.Close(cc, src.fd);
  tracer.Exit(cc);
}

}  // namespace

int main() {
  // 1. A filesystem with two small projects.
  SimFilesystem fs;
  fs.MkdirAll("/bin");
  fs.CreateFile("/bin/cc", 50'000);
  for (const char* dir : {"/home/u/alpha", "/home/u/beta"}) {
    fs.MkdirAll(dir);
    fs.CreateFile(std::string(dir) + "/main.c", 8'000);
    fs.CreateFile(std::string(dir) + "/a.h", 1'000);
    fs.CreateFile(std::string(dir) + "/b.h", 1'500);
  }

  // 2. The SEER stack: tracer -> observer -> correlator.
  ProcessTable processes;
  SimClock clock;
  SyscallTracer tracer(&fs, &processes, &clock);
  Observer observer(ObserverConfig{}, &fs);
  Correlator correlator;
  observer.set_sink(&correlator);
  tracer.AddSink(&observer);

  // 3. The user compiles alpha three times, then beta three times.
  const Pid shell = processes.SpawnInit(1000, "/home/u");
  tracer.Exec(shell, "/bin/cc");  // stand-in shell image
  for (int i = 0; i < 3; ++i) {
    Compile(tracer, shell, "/home/u/alpha");
    clock.AdvanceSeconds(600);
  }
  for (int i = 0; i < 3; ++i) {
    Compile(tracer, shell, "/home/u/beta");
    clock.AdvanceSeconds(600);
  }

  // 4. What did SEER learn?
  std::printf("semantic distance alpha/main.c -> alpha/a.h : %.2f\n",
              correlator.Distance("/home/u/alpha/main.c", "/home/u/alpha/a.h"));
  std::printf("semantic distance alpha/main.c -> beta/a.h  : %.2f (farther or untracked)\n\n",
              correlator.Distance("/home/u/alpha/main.c", "/home/u/beta/a.h"));

  const ClusterSet clusters = correlator.BuildClusters();
  std::printf("projects found: %zu\n", clusters.clusters.size());
  for (size_t i = 0; i < clusters.clusters.size(); ++i) {
    std::printf("  project %zu:", i);
    for (const FileId id : clusters.clusters[i].members) {
      std::printf(" %s", std::string(correlator.files().PathOf(id)).c_str());
    }
    std::printf("\n");
  }

  // 5. Fill a 100 KB hoard: whole projects, most recently active first.
  HoardManager hoard(100'000);
  const auto size_of = [&fs](PathId path) -> uint64_t {
    const auto info = fs.Stat(std::string(GlobalPaths().PathOf(path)));
    return info.has_value() ? info->size : 0;
  };
  const HoardSelection sel =
      hoard.ChooseHoard(correlator, clusters, observer.always_hoard(), size_of);
  std::printf("\nhoard (%llu bytes of %llu budget, %zu projects, %zu skipped):\n",
              static_cast<unsigned long long>(sel.bytes_used),
              static_cast<unsigned long long>(sel.budget_bytes), sel.projects_hoarded,
              sel.projects_skipped);
  for (const auto& path : sel.PathStrings()) {
    std::printf("  %s\n", path.c_str());
  }
  return 0;
}
