// Deployment-shaped SEER: asynchronous correlator + periodic hoard daemon.
//
// In the deployed system the observer must stay microseconds-cheap on the
// syscall path while the correlator daemon lags safely behind, and the
// user never has to announce disconnections — a timer refills the hoard
// (Section 2). This example wires exactly that: syscalls flow through the
// observer into an AsyncCorrelator's bounded queue, a worker thread
// maintains the tables, and a HoardDaemon refreshes a 30 MB hoard every
// four simulated hours. A surprise disconnection at the end shows the user
// surviving on whatever the last periodic fill chose.
//
//   $ ./daemon_mode
#include <cstdio>

#include "src/core/async_pipeline.h"
#include "src/core/hoard_daemon.h"
#include "src/observer/observer.h"
#include "src/process/syscall_tracer.h"
#include "src/replication/replicators.h"
#include "src/sim/trackers.h"
#include "src/workload/environment.h"
#include "src/workload/user_model.h"

using namespace seer;

int main() {
  // --- substrate -------------------------------------------------------------
  SimFilesystem fs;
  Rng rng(606);
  EnvironmentConfig env_config;
  env_config.num_projects = 5;
  env_config.size_scale = 5.0;
  const UserEnvironment env = BuildEnvironment(&fs, env_config, &rng);
  ProcessTable processes;
  SimClock clock;
  SyscallTracer tracer(&fs, &processes, &clock);

  // --- SEER in daemon shape ---------------------------------------------------
  Observer observer(ObserverConfig{}, &fs);
  observer.PretrainProgramHistory(env.find, 10'000, 9'000);
  AsyncCorrelator correlator;  // worker thread owns the tables
  observer.set_sink(&correlator);
  MissLog miss_log;
  observer.set_miss_listener(&miss_log);
  tracer.AddSink(&observer);

  const auto size_of = [&fs](const std::string& path) -> uint64_t {
    const auto info = fs.Stat(path);
    return info.has_value() ? info->size : 14'000;
  };
  const auto size_of_id = [&size_of](PathId path) {
    return size_of(std::string(GlobalPaths().PathOf(path)));
  };
  RumorReplicator replication{size_of};
  ReplicationHook hook(&replication);
  tracer.AddSink(&hook);

  HoardManager manager(30ull << 20);
  // The daemon queries through the async pipeline: drain, then fill under
  // the pipeline's lock.
  HoardDaemon::Config daemon_config;
  daemon_config.interval = 4 * kMicrosPerHour;
  size_t fills = 0;
  // Wrap the daemon's clustering path through the AsyncCorrelator.
  auto refill = [&](Time now) {
    correlator.Drain();
    correlator.Query([&](const Correlator& c) {
      for (const auto& path : miss_log.TakeFilesToHoard()) {
        manager.Pin(path);
      }
      const ClusterSet clusters = c.BuildClusters();
      const HoardSelection sel =
          manager.ChooseHoard(c, clusters, observer.always_hoard(), size_of_id);
      replication.SetHoard(sel.PathStrings());
      ++fills;
      std::printf("  [t=%5.1fh] hoard refill #%zu: %zu files, %.1f MB (%zu projects)\n",
                  static_cast<double>(now) / kMicrosPerHour, fills, sel.files.size(),
                  static_cast<double>(sel.bytes_used) / 1048576.0, sel.projects_hoarded);
      return 0;
    });
  };

  // --- a working day, no user interaction -------------------------------------
  UserModel user(&tracer, &env, UserModelConfig{}, 606);
  user.set_miss_log(&miss_log);
  user.SeedHistory();

  std::printf("== connected: 12 simulated hours, periodic refills ==\n");
  Time next_check = clock.now();
  const Time end = clock.now() + 12 * kMicrosPerHour;
  Time last_fill = -1;
  while (clock.now() < end) {
    user.RunActiveHours(0.5);
    if (last_fill < 0 || clock.now() - last_fill >= daemon_config.interval) {
      refill(clock.now());
      last_fill = clock.now();
    }
    (void)next_check;
  }
  std::printf("pipeline: %zu messages enqueued, %zu processed, queue peak %zu\n",
              correlator.enqueued(), correlator.processed(), correlator.high_watermark());

  // --- surprise disconnection ---------------------------------------------------
  std::printf("\n== surprise disconnection: nobody warned SEER ==\n");
  replication.OnDisconnect(clock.now());
  miss_log.StartDisconnection(clock.now());
  tracer.set_availability_filter(
      [&replication](const std::string& path) { return replication.Access(path); });
  user.set_availability(
      [&replication](const std::string& path) { return replication.IsLocal(path); });
  user.RunActiveHours(2.0);
  std::printf("misses during the surprise disconnection: %zu\n",
              miss_log.CurrentDisconnectionMissCount());
  std::printf("(the last periodic refill is what saved — or failed — the user)\n");
  return 0;
}
