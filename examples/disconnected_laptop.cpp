// A day in the life of a disconnected laptop.
//
// Runs the full system end to end: a synthetic developer works connected,
// SEER fills a 40 MB hoard, the Rumor replication substrate fetches it, the
// laptop disconnects, the user keeps working (mostly on hoarded projects,
// occasionally tripping over a miss and reporting it), and at reconnection
// Rumor reconciles local and remote updates — including a deliberately
// injected conflict.
//
//   $ ./disconnected_laptop
#include <cstdio>

#include "src/core/correlator.h"
#include "src/core/hoard.h"
#include "src/observer/observer.h"
#include "src/process/syscall_tracer.h"
#include "src/replication/replicators.h"
#include "src/sim/trackers.h"
#include "src/workload/environment.h"
#include "src/workload/user_model.h"

using namespace seer;

int main() {
  // --- environment and SEER stack -----------------------------------------
  SimFilesystem fs;
  Rng rng(2024);
  EnvironmentConfig env_config;
  env_config.num_projects = 6;
  env_config.size_scale = 6.0;
  const UserEnvironment env = BuildEnvironment(&fs, env_config, &rng);

  ProcessTable processes;
  SimClock clock;
  SyscallTracer tracer(&fs, &processes, &clock);
  Observer observer(ObserverConfig{}, &fs);
  observer.PretrainProgramHistory(env.find, 10'000, 9'000);
  Correlator correlator;
  observer.set_sink(&correlator);
  MissLog miss_log;
  observer.set_miss_listener(&miss_log);

  const auto size_of = [&fs](const std::string& path) -> uint64_t {
    const auto info = fs.Stat(path);
    return info.has_value() ? info->size : 14'000;
  };
  const auto size_of_id = [&size_of](PathId path) {
    return size_of(std::string(GlobalPaths().PathOf(path)));
  };
  RumorReplicator replication{size_of};
  ReplicationHook hook(&replication);
  tracer.AddSink(&observer);
  tracer.AddSink(&hook);

  UserModel user(&tracer, &env, UserModelConfig{}, 99);
  user.set_miss_log(&miss_log);
  user.SeedHistory();

  // --- connected work -------------------------------------------------------
  std::printf("== connected: the user works for two hours ==\n");
  user.RunActiveHours(2.0);
  std::printf("traced %llu events; correlator knows %zu files\n",
              static_cast<unsigned long long>(tracer.events_emitted()),
              correlator.files().size());

  // A colleague edits one of our files on the servers meanwhile.
  const std::string& shared_file = env.projects[0].sources[0];
  replication.RecordRemoteUpdate(shared_file, clock.now());
  std::printf("(a peer updated %s remotely)\n\n", shared_file.c_str());

  // --- hoard fill ------------------------------------------------------------
  std::printf("== disconnection imminent: SEER fills a 40 MB hoard ==\n");
  HoardManager hoard(40ull << 20);
  const ClusterSet clusters = correlator.BuildClusters();
  const HoardSelection sel =
      hoard.ChooseHoard(correlator, clusters, observer.always_hoard(), size_of_id);
  replication.SetHoard(sel.PathStrings());
  std::printf("%zu projects hoarded (%zu skipped), %.1f MB of %.1f MB used;\n",
              sel.projects_hoarded, sel.projects_skipped,
              static_cast<double>(sel.bytes_used) / 1048576.0,
              static_cast<double>(sel.budget_bytes) / 1048576.0);
  std::printf("replication fetched %llu files (%.1f MB)\n\n",
              static_cast<unsigned long long>(replication.stats().files_fetched),
              static_cast<double>(replication.stats().bytes_fetched) / 1048576.0);

  // --- disconnected work ------------------------------------------------------
  std::printf("== disconnected: three hours of active use ==\n");
  replication.OnDisconnect(clock.now());
  miss_log.StartDisconnection(clock.now());
  tracer.set_availability_filter(
      [&replication](const std::string& path) { return replication.Access(path); });
  user.set_availability(
      [&replication](const std::string& path) { return replication.IsLocal(path); });
  // The user also edits the same file the peer changed: a conflict brews.
  user.RunActiveHours(3.0);
  replication.RecordLocalUpdate(shared_file, clock.now());

  std::printf("misses this disconnection: %zu\n", miss_log.CurrentDisconnectionMissCount());
  for (const auto& miss : miss_log.records()) {
    std::printf("  [%s sev=%d] %s\n", miss.automatic ? "auto  " : "manual",
                static_cast<int>(miss.severity), PathString(miss.path).c_str());
  }

  // --- reconnection -------------------------------------------------------------
  std::printf("\n== reconnection: Rumor reconciles ==\n");
  tracer.set_availability_filter(nullptr);
  user.set_availability(nullptr);
  miss_log.EndDisconnection();
  replication.OnReconnect(clock.now());
  const ReplicationStats& stats = replication.stats();
  std::printf("pushed %llu updates, pulled %llu, conflicts detected %llu / resolved %llu\n",
              static_cast<unsigned long long>(stats.pushed_updates),
              static_cast<unsigned long long>(stats.pulled_updates),
              static_cast<unsigned long long>(stats.conflicts_detected),
              static_cast<unsigned long long>(stats.conflicts_resolved));

  const auto to_hoard = miss_log.TakeFilesToHoard();
  std::printf("%zu missed files queued for the next hoard fill\n", to_hoard.size());
  return 0;
}
