// Web-cache prefetching with SEER's predictive machinery (Section 7).
//
// The paper's future work proposes applying its inference methods to Web
// caching. This example simulates browsing sessions over a set of sites —
// each page pulls in its embedded resources, and users hop between related
// pages — then compares a plain LRU cache against the same cache augmented
// with the AccessPredictor's prefetch sets.
//
//   $ ./web_prefetch
#include <cstdio>
#include <algorithm>
#include <deque>
#include <set>
#include <string>
#include <vector>

#include "src/core/access_predictor.h"
#include "src/util/rng.h"

using namespace seer;

namespace {

struct Page {
  std::string url;
  std::vector<std::string> resources;  // always fetched with the page
  std::vector<int> links;              // pages the user follows from here
};

// A tiny web: `sites` clusters of `pages_per_site` pages; intra-site links
// dominate.
std::vector<Page> BuildWeb(int sites, int pages_per_site, Rng* rng) {
  std::vector<Page> web;
  for (int s = 0; s < sites; ++s) {
    for (int p = 0; p < pages_per_site; ++p) {
      Page page;
      page.url = "site" + std::to_string(s) + "/page" + std::to_string(p);
      const int resources = 2 + static_cast<int>(rng->NextBounded(3));
      for (int r = 0; r < resources; ++r) {
        page.resources.push_back("site" + std::to_string(s) + "/res" + std::to_string(p) + "_" +
                                 std::to_string(r));
      }
      for (int l = 0; l < 3; ++l) {
        const bool intra = rng->NextBool(0.9);
        const int target_site = intra ? s : static_cast<int>(rng->NextBounded(sites));
        page.links.push_back(target_site * pages_per_site +
                             static_cast<int>(rng->NextBounded(pages_per_site)));
      }
      web.push_back(std::move(page));
    }
  }
  return web;
}

// A fixed-capacity LRU cache of URLs.
class LruCache {
 public:
  explicit LruCache(size_t capacity) : capacity_(capacity) {}

  bool Access(const std::string& url) {
    const bool hit = index_.count(url) != 0;
    Touch(url);
    return hit;
  }

  void Insert(const std::string& url) { Touch(url); }

 private:
  void Touch(const std::string& url) {
    if (index_.count(url) != 0) {
      order_.erase(std::find(order_.begin(), order_.end(), url));
    }
    order_.push_back(url);
    index_.insert(url);
    while (order_.size() > capacity_) {
      index_.erase(order_.front());
      order_.pop_front();
    }
  }

  size_t capacity_;
  std::deque<std::string> order_;
  std::set<std::string> index_;
};

}  // namespace

int main() {
  Rng rng(77);
  const auto web = BuildWeb(8, 6, &rng);

  AccessPredictor predictor;
  LruCache plain(40);
  LruCache prefetching(40);

  size_t requests = 0;
  size_t plain_hits = 0;
  size_t prefetch_hits = 0;

  int page_index = 0;
  for (int step = 0; step < 4'000; ++step) {
    const Page& page = web[static_cast<size_t>(page_index)];

    // The browser fetches the page and its resources.
    std::vector<std::string> urls = {page.url};
    urls.insert(urls.end(), page.resources.begin(), page.resources.end());
    for (const auto& url : urls) {
      ++requests;
      plain_hits += plain.Access(url) ? 1 : 0;
      prefetch_hits += prefetching.Access(url) ? 1 : 0;
      predictor.OnAccess(url);
    }
    // The prefetching cache pulls in what the predictor thinks comes next.
    for (const auto& url : predictor.PredictRelated(page.url, 6)) {
      prefetching.Insert(url);
    }

    // Follow a link (occasionally jump somewhere new entirely).
    if (rng.NextBool(0.1) || page.links.empty()) {
      page_index = static_cast<int>(rng.NextBounded(web.size()));
    } else {
      page_index = page.links[rng.NextBounded(page.links.size())];
    }
  }

  std::printf("requests: %zu\n", requests);
  std::printf("plain LRU cache hit rate:        %.1f%%\n",
              100.0 * static_cast<double>(plain_hits) / static_cast<double>(requests));
  std::printf("SEER-prefetching cache hit rate: %.1f%%\n",
              100.0 * static_cast<double>(prefetch_hits) / static_cast<double>(requests));
  std::printf("\nprefetch set for %s:\n", web[0].url.c_str());
  for (const auto& url : predictor.PredictRelated(web[0].url, 6)) {
    std::printf("  %s\n", url.c_str());
  }
  return 0;
}
